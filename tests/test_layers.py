"""Tests for repro.nn layers (Linear, Conv1d, LSTM, norm, dropout)."""

import numpy as np
import pytest

from repro import nn
from .test_tensor import check_grad


class TestLinear:
    def test_shapes_and_vmm(self, rng):
        layer = nn.Linear(6, 4, rng=rng)
        out = layer(nn.Tensor(rng.standard_normal((3, 6))))
        assert out.shape == (3, 4)
        assert layer.vmm_shapes() == [(6, 4)]

    def test_grad(self, rng):
        layer = nn.Linear(5, 3, rng=rng)
        x = nn.Tensor(rng.standard_normal((2, 5)))
        check_grad(lambda: (layer(x) ** 2).sum(), layer.weight, tol=1e-5)
        check_grad(lambda: (layer(x) ** 2).sum(), layer.bias, tol=1e-5)

    def test_matmul_hook_bypasses_tape(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        calls = []

        def hook(x, w, slot):
            calls.append(x.shape)
            return x @ w

        layer.matmul_hook = hook
        x = nn.Tensor(rng.standard_normal((5, 4)))
        out = layer(x)
        assert calls == [(5, 4)]
        reference = x.data @ layer.weight.data + layer.bias.data
        assert np.allclose(out.data, reference)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(nn.Tensor(np.zeros((1, 4))))
        assert np.allclose(out.data, 0.0)


class TestConv1d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 2), (3, 1)])
    def test_output_length(self, rng, stride, padding):
        conv = nn.Conv1d(2, 3, 5, stride=stride, padding=padding, rng=rng)
        x = nn.Tensor(rng.standard_normal((1, 2, 23)))
        out = conv(x)
        assert out.shape == (1, 3, conv.output_length(23))

    def test_matches_manual_convolution(self, rng):
        conv = nn.Conv1d(1, 1, 3, rng=rng)
        conv.bias.data[:] = 0.0
        x = rng.standard_normal(8)
        out = conv(nn.Tensor(x.reshape(1, 1, 8))).data.ravel()
        kernel = conv.weight.data.ravel()
        expected = np.correlate(x, kernel, mode="valid")
        assert np.allclose(out, expected)

    def test_grad(self, rng):
        conv = nn.Conv1d(2, 2, 3, stride=2, padding=1, rng=rng)
        x = nn.Tensor(rng.standard_normal((2, 2, 9)), requires_grad=True)
        check_grad(lambda: (conv(x) ** 2).sum(), conv.weight, tol=1e-5)
        check_grad(lambda: (conv(x) ** 2).sum(), x, tol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        conv = nn.Conv1d(3, 2, 3, rng=rng)
        with pytest.raises(ValueError):
            conv(nn.Tensor(np.zeros((1, 2, 10))))

    def test_hook_equivalence(self, rng):
        conv = nn.Conv1d(2, 3, 3, stride=2, padding=1, rng=rng)
        x = nn.Tensor(rng.standard_normal((2, 2, 12)))
        exact = conv(x).data
        conv.matmul_hook = lambda a, w, slot: a @ w
        hooked = conv(x).data
        assert np.allclose(exact, hooked)


class TestLSTM:
    def test_shapes(self, rng):
        lstm = nn.LSTM(3, 5, rng=rng)
        out = lstm(nn.Tensor(rng.standard_normal((2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert lstm.vmm_shapes() == [(3, 20), (5, 20)]

    def test_reverse_flips_time(self, rng):
        x = rng.standard_normal((1, 6, 3))
        fwd = nn.LSTM(3, 4, reverse=False, rng=np.random.default_rng(0))
        rev = nn.LSTM(3, 4, reverse=True, rng=np.random.default_rng(0))
        out_fwd = fwd(nn.Tensor(x[:, ::-1].copy())).data
        out_rev = rev(nn.Tensor(x)).data
        assert np.allclose(out_fwd[:, ::-1], out_rev)

    def test_grad(self, rng):
        lstm = nn.LSTM(2, 3, rng=rng)
        x = nn.Tensor(rng.standard_normal((1, 4, 2)), requires_grad=True)
        check_grad(lambda: (lstm(x) ** 2).sum(), lstm.weight_ih, tol=1e-5)
        check_grad(lambda: (lstm(x) ** 2).sum(), lstm.weight_hh, tol=1e-5)
        check_grad(lambda: (lstm(x) ** 2).sum(), x, tol=1e-5)

    def test_deployed_matches_taped(self, rng):
        lstm = nn.LSTM(3, 4, rng=rng)
        x = rng.standard_normal((2, 5, 3))
        exact = lstm(nn.Tensor(x)).data
        lstm.matmul_hook = lambda a, w, slot: a @ w
        deployed = lstm(nn.Tensor(x)).data
        assert np.allclose(exact, deployed, atol=1e-12)

    def test_forget_bias_initialized(self, rng):
        lstm = nn.LSTM(3, 4, rng=rng)
        assert np.allclose(lstm.bias.data[4:8], 1.0)
        assert np.allclose(lstm.bias.data[:4], 0.0)


class TestBatchNormDropout:
    def test_batchnorm_normalizes(self, rng):
        bn = nn.BatchNorm1d(3)
        x = nn.Tensor(rng.standard_normal((8, 3, 20)) * 5 + 2)
        out = bn(x)
        assert abs(out.data.mean()) < 0.1
        assert abs(out.data.std() - 1.0) < 0.1

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm1d(2, momentum=1.0)
        x = nn.Tensor(rng.standard_normal((4, 2, 10)))
        bn(x)          # capture stats
        bn.eval()
        out1 = bn(x).data
        out2 = bn(nn.Tensor(x.data)).data
        assert np.allclose(out1, out2)

    def test_batchnorm_rejects_2d(self):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(2)(nn.Tensor(np.zeros((3, 2))))

    def test_dropout_train_vs_eval(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = nn.Tensor(np.ones((100, 100)))
        out = drop(x)
        # Inverted dropout keeps the expectation.
        assert abs(out.data.mean() - 1.0) < 0.1
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)

    def test_dropout_validates_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestContainers:
    def test_sequential(self, rng):
        seq = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(),
                            nn.Linear(8, 2, rng=rng))
        out = seq(nn.Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)
        assert len(list(seq)) == 3
        assert isinstance(seq[1], nn.ReLU)

    def test_permute(self, rng):
        x = nn.Tensor(rng.standard_normal((2, 3, 4)))
        assert nn.Permute(0, 2, 1)(x).shape == (2, 4, 3)

    def test_named_parameters_and_state_dict(self, rng):
        seq = nn.Sequential(nn.Linear(3, 3, rng=rng))
        names = dict(seq.named_parameters())
        assert "layer0.weight" in names
        state = seq.state_dict()
        clone = nn.Sequential(nn.Linear(3, 3, rng=np.random.default_rng(9)))
        clone.load_state_dict(state)
        assert np.allclose(clone[0].weight.data, seq[0].weight.data)

    def test_load_state_dict_shape_check(self, rng):
        layer = nn.Linear(3, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.load_state_dict({"weight": np.zeros((2, 2)),
                                   "bias": np.zeros(3)})

    def test_load_state_dict_missing_key(self, rng):
        layer = nn.Linear(3, 3, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({})
