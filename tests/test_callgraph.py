"""Unit tests for the call-graph resolver behind SWD009–SWD013.

The resolver is deliberately lightweight, but the properties the
concurrency rules lean on must hold exactly: transitive blocking
chains across modules, alias / ``functools.partial`` / decorator
resolution, re-export chasing, spawn-point classification, and the
await-aware blocking tables.  Each test builds a small package on
disk and inspects the graph directly.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import SourceModule, build_call_graph

REPO = Path(__file__).resolve().parents[1]


def load_tree(tmp_path: Path, files: dict[str, str]):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return [SourceModule.load(tmp_path / rel, tmp_path) for rel in files]


def graph_of(tmp_path: Path, files: dict[str, str]):
    return build_call_graph(load_tree(tmp_path, files))


def edges_between(graph, caller: str, callee: str):
    return [edge for edge in graph.out_edges.get(caller, ())
            if edge.callee == callee]


# ----------------------------------------------------------------------
# Blocking chains
# ----------------------------------------------------------------------

def test_transitive_blocking_chain_crosses_modules(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/disk.py": """
            import numpy as np

            def load_weights(path):
                return np.load(path)
        """,
        "pkg/api.py": """
            from .disk import load_weights

            def build(path):
                return load_weights(path)
        """,
    })
    chain = graph.blocking_chain("pkg.api:build")
    assert chain is not None
    assert chain[0] == "load_weights()"
    assert "numpy.load" in chain[-1]


def test_import_alias_normalizes_to_blocking_table(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/nap.py": """
            import time as clock
            from time import sleep

            def pause_via_alias():
                clock.sleep(1.0)

            def pause_via_bare_name():
                sleep(1.0)
        """,
    })
    for qname in ("pkg.nap:pause_via_alias", "pkg.nap:pause_via_bare_name"):
        sites = graph.blocking_sites.get(qname)
        assert sites, f"{qname} should carry a blocking site"
        assert "time.sleep" in sites[0][1]


def test_awaited_and_nonblocking_acquire_are_clean(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/locks.py": """
            import asyncio
            import threading

            class Box:
                def __init__(self):
                    self._sem = asyncio.Semaphore(2)
                    self._mu = threading.Lock()

                async def borrow(self):
                    await self._sem.acquire()

                def try_grab(self):
                    return self._mu.acquire(blocking=False)

                def grab(self):
                    self._mu.acquire()
        """,
    })
    assert "pkg.locks:Box.borrow" not in graph.blocking_sites
    assert "pkg.locks:Box.try_grab" not in graph.blocking_sites
    assert "pkg.locks:Box.grab" in graph.blocking_sites


def test_spawn_hop_does_not_propagate_blocking(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/hop.py": """
            import asyncio
            import time

            def slow():
                time.sleep(1.0)

            async def safe():
                await asyncio.to_thread(slow)
        """,
    })
    assert graph.blocking_chain("pkg.hop:slow") is not None
    assert graph.blocking_chain("pkg.hop:safe") is None
    thread_edges = edges_between(graph, "pkg.hop:safe", "pkg.hop:slow")
    assert [edge.kind for edge in thread_edges] == ["thread"]


# ----------------------------------------------------------------------
# Name resolution: aliases, partials, decorators, re-exports
# ----------------------------------------------------------------------

def test_module_alias_and_partial_resolve_to_target(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/jobs.py": """
            import functools

            def worker(n):
                return n

            handler = worker
            bound = functools.partial(worker, 3)
        """,
        "pkg/use.py": """
            from .jobs import bound, handler

            def run_handler():
                return handler()

            def run_bound():
                return bound()
        """,
    })
    assert edges_between(graph, "pkg.use:run_handler", "pkg.jobs:worker")
    assert edges_between(graph, "pkg.use:run_bound", "pkg.jobs:worker")


def test_decorated_def_is_registered_and_callable(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/deco.py": """
            import functools

            def traced(fn):
                @functools.wraps(fn)
                def inner(*args, **kwargs):
                    return fn(*args, **kwargs)
                return inner

            @traced
            def decorated_worker():
                return 1

            def call_it():
                return decorated_worker()
        """,
    })
    info = graph.functions["pkg.deco:decorated_worker"]
    assert info.decorators == ("traced",)
    assert edges_between(graph, "pkg.deco:call_it",
                         "pkg.deco:decorated_worker")


def test_reexport_chasing_through_package_init(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "from .disk import load_weights\n",
        "pkg/disk.py": """
            import numpy as np

            def load_weights(path):
                return np.load(path)
        """,
        "client.py": """
            from pkg import load_weights

            def fetch(path):
                return load_weights(path)
        """,
    })
    assert edges_between(graph, "client:fetch", "pkg.disk:load_weights")
    chain = graph.blocking_chain("client:fetch")
    assert chain is not None and chain[0] == "load_weights()"


def test_self_attr_type_inference(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/objs.py": """
            import time

            class Engine:
                def run(self):
                    time.sleep(0.1)

            class Host:
                def __init__(self):
                    self.engine = Engine()

                def tick(self):
                    self.engine.run()
        """,
    })
    assert edges_between(graph, "pkg.objs:Host.tick", "pkg.objs:Engine.run")
    chain = graph.blocking_chain("pkg.objs:Host.tick")
    assert chain is not None and chain[0] == "run()"


# ----------------------------------------------------------------------
# Execution-context classification
# ----------------------------------------------------------------------

def test_thread_context_closure_follows_partial_targets(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/spawn.py": """
            import functools
            import threading

            def leaf():
                return 1

            def worker():
                return leaf()

            def start():
                thread = threading.Thread(
                    target=functools.partial(worker))
                thread.start()
        """,
    })
    assert "pkg.spawn:worker" in graph.thread_roots
    context = graph.thread_context()
    assert {"pkg.spawn:worker", "pkg.spawn:leaf"} <= context
    assert "pkg.spawn:start" not in context


def test_fork_context_from_process_target(tmp_path):
    graph = graph_of(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/forks.py": """
            import multiprocessing

            def child_main():
                return 0

            def launch():
                proc = multiprocessing.Process(target=child_main)
                proc.start()
                return proc
        """,
    })
    assert "pkg.forks:child_main" in graph.fork_roots
    assert "pkg.forks:child_main" in graph.fork_context()


# ----------------------------------------------------------------------
# Repo self-check: the graph resolves the real serve stack.
# ----------------------------------------------------------------------

def test_graph_resolves_the_serve_stack():
    src = REPO / "src" / "repro" / "serve"
    modules = [SourceModule.load(path, REPO / "src")
               for path in sorted(src.rglob("*.py"))]
    graph = build_call_graph(modules)
    start = graph.functions["repro.serve.server:BasecallServer.start"]
    assert start.is_async
    # The shutdown fix in this PR: the pool shutdown hops through
    # asyncio.to_thread, so no coroutine in the server retains a
    # synchronous blocking chain.
    for qname in graph.async_functions():
        assert graph.blocking_sites.get(qname, []) == [], (
            f"coroutine {qname} blocks the loop directly")
