"""SWD008 fixture: monotonic timing that never reads the system clock."""

import time
from time import perf_counter


def duration_via_module(job):
    start = time.perf_counter()
    job()
    return time.perf_counter() - start


def duration_via_bare_name(job):
    start = perf_counter()
    job()
    return perf_counter() - start


def sleep_is_not_a_measurement(seconds):
    time.sleep(seconds)


def unrelated_method_named_time(recorder):
    return recorder.time()
