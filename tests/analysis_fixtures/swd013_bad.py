"""SWD013 fixture: coroutine objects built and dropped or mis-shielded."""

import asyncio


async def step():
    await asyncio.sleep(0)


async def run_all():
    step()
    await step()


async def guarded(timeout):
    return await asyncio.wait_for(asyncio.shield(step()), timeout)
