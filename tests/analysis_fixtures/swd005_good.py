"""SWD005 fixture: every division carries a visible nonzero guard."""

import numpy as np


def checked(a, b):
    if b == 0:
        raise ValueError("b must be nonzero")
    return a / b


def floored(a, b):
    return a / max(b, 1e-12)


def mean(values):
    if not values:
        return 0.0
    return sum(values) / len(values)


def masked(top, coverage):
    return np.where(coverage > 0, top / coverage, 0.0)


def broadcast_positive(a, full_scale):
    if not np.all(np.asarray(full_scale) > 0):
        raise ValueError("full_scale must be positive")
    return a / full_scale


def zero_comparison_is_fine(x):
    return x == 0.0
