"""SWD005 fixture: unguarded division and brittle float equality."""


def ratio(a, b):
    return a / b                    # b can reach exact zero


def brittle(x):
    return x == 0.25                # nonzero float equality
