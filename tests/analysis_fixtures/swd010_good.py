"""SWD010 fixture: every store happens under the class's own lock."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self, amount):
        with self._lock:
            self.total += amount

    def snapshot(self):
        with self._lock:
            return self.total

    def _reset_locked(self):
        self.total = 0
