"""SWD011 fixture: resources that owe a cleanup call leak."""

import asyncio
from concurrent.futures import ThreadPoolExecutor


async def _send(payload):
    await asyncio.sleep(0)


async def fire_and_forget(payload):
    asyncio.create_task(_send(payload))


def fan_out(jobs):
    pool = ThreadPoolExecutor(2)
    for job in jobs:
        pool.submit(job)


class Runner:
    def __init__(self):
        self._pool = ThreadPoolExecutor(2)
