"""SWD009 fixture: coroutines reach blocking primitives on the loop."""

import asyncio
import time


def _flush(path, payload):
    path.write_bytes(payload)


async def nap_on_loop():
    time.sleep(0.05)
    await asyncio.sleep(0)


async def drain(path, payload):
    _flush(path, payload)
    await asyncio.sleep(0)
