"""SWD008 fixture: wall-clock reads where a monotonic clock belongs."""

import time
import time as clock
from time import time as now


def duration_via_module(job):
    start = time.time()
    job()
    return time.time() - start


def duration_via_alias(job):
    start = clock.time()
    job()
    return clock.time() - start


def timestamp_via_bare_name(name):
    return {"event": name, "ts": now()}
