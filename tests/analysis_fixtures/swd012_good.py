"""SWD012 fixture: processes spawn first, from the main thread only."""

import multiprocessing
import threading


def fork_then_thread(work):
    child = multiprocessing.Process(target=work)
    child.start()
    feeder = threading.Thread(target=work)
    feeder.start()


def threads_only(work):
    feeder = threading.Thread(target=work)
    feeder.start()
