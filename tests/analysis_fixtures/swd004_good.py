"""SWD004 fixture: defensive copies and the explicit `out` contract."""

import numpy as np


def scale_rows(matrix, factors):
    matrix = np.asarray(matrix, dtype=np.float64).copy()
    matrix *= factors[:, None]      # local temporary after the rebind
    return matrix


def round_values(out):
    np.round(out, out=out)          # `out` name advertises mutation
    return out


def accumulate(out_buffer, update):
    out_buffer += update            # `out_*` prefix advertises mutation
    return out_buffer
