"""SWD009 fixture: blocking work hops off the loop via an executor."""

import asyncio
import time


def _flush(path, payload):
    path.write_bytes(payload)
    time.sleep(0.01)


async def nap_off_loop():
    await asyncio.sleep(0.05)


async def drain(path, payload):
    await asyncio.to_thread(_flush, path, payload)


async def drain_via_executor(loop, path, payload):
    await loop.run_in_executor(None, _flush, path, payload)
