"""SWD014 fixture: backends registered without a matching salt policy."""


def _run_fast(engine, x):
    return x


def _run_approx(engine, x):
    return x


BACKENDS = {
    "fast": _run_fast,
    "approx": _run_approx,  # no salt entry: undeclared cache identity
}

BACKEND_CACHE_SALTS = {
    "fast": "exact",
    "retired": "exact",  # stale: names no registered backend
}
