"""SWD012 fixture: process spawns that inherit poisoned state."""

import asyncio
import multiprocessing
import threading


def thread_then_fork(work):
    feeder = threading.Thread(target=work)
    feeder.start()
    child = multiprocessing.Process(target=work)
    child.start()


async def fork_from_coroutine(work):
    child = multiprocessing.Process(target=work)
    child.start()
    await asyncio.sleep(0)


def _pump(work):
    child = multiprocessing.Process(target=work)
    child.start()


def start_pump(work):
    feeder = threading.Thread(target=_pump, args=(work,))
    feeder.start()
