"""SWD002 fixture: every field reaches cache_key or the allowlist.

``vmm_backend`` is popped before hashing, which is legal because the
analyzer's allowlist documents it as numerically irrelevant.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SwordfishConfig:
    quantization: str = "FPP 16-16"
    seed: int = 0
    vmm_backend: str | None = None

    def to_dict(self) -> dict:
        return {
            "quantization": self.quantization,
            "seed": self.seed,
            "vmm_backend": self.vmm_backend,
        }

    def cache_key(self) -> str:
        payload = self.to_dict()
        payload.pop("vmm_backend", None)
        return str(sorted(payload.items()))
