"""SWD010 fixture: a lock-owning class mutates state off-lock."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self, amount):
        self.total += amount

    def reset(self):
        with self._lock:
            self.total = 0
        self.note = "reset"
