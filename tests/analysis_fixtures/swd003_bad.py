"""SWD003 fixture: narrow dtypes drifting into a float64 kernel."""

import numpy as np


def kernel(x):
    y = np.asarray(x, dtype=np.float32)
    z = y.astype("float16").astype(np.float64)
    w = np.float32(3.0)
    return y, z, w
