"""SWD004 fixture: kernels that mutate caller-owned arrays in place."""

import numpy as np


def scale_rows(matrix, factors):
    matrix *= factors[:, None]      # augmented assign on a parameter
    return matrix


def write_diag(weights, value):
    np.fill_diagonal(weights, value)  # mutating np call on a parameter
    return weights


def round_values(values):
    np.round(values, out=values)    # out= aimed at a parameter
    return values


def mask_columns(bank, columns):
    bank[:, columns] = 0.0          # subscript store into a parameter
    return bank
