"""SWD007 fixture: exception handling that keeps faults observable."""


def narrow_ignore(path):
    try:
        return path.read_text()
    except FileNotFoundError:
        pass
    return None


def narrow_tuple_ignore(path):
    try:
        path.unlink()
    except (OSError, ValueError):
        pass


def broad_with_fallback(job):
    try:
        return job()
    except Exception as exc:
        return {"status": "failed", "error": repr(exc)}


def broad_reraise(job):
    try:
        return job()
    except Exception:
        job.cleanup()
        raise


def broad_recorded(job, failures):
    try:
        return job()
    except Exception as exc:
        failures.append(exc)
    return None
