"""SWD013 fixture: coroutines are awaited; shields wrap stored tasks."""

import asyncio


async def step():
    await asyncio.sleep(0)


async def run_all():
    await step()
    task = asyncio.create_task(step())
    await task


async def guarded(timeout):
    task = asyncio.create_task(step())
    try:
        return await asyncio.wait_for(asyncio.shield(task), timeout)
    except asyncio.TimeoutError:
        task.cancel()
        raise
