"""SWD006 fixture: ``__all__`` names and re-exports that don't resolve."""

from .mod import present

__all__ = ["present", "missing_name"]
