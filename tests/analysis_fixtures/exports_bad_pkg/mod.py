present = 1
