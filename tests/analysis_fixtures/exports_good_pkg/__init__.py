"""SWD006 fixture: coherent exports."""

from .mod import present

__all__ = ["present"]
