present = 1

__all__ = ["present"]
