"""SWD014 fixture: registry and salt policy in lockstep."""


def _run_ref(engine, x):
    return x


def _run_fast(engine, x):
    return x


BACKENDS = {
    "ref": _run_ref,
    "fast": _run_fast,
}
BACKENDS["extra"] = _run_ref

BACKEND_CACHE_SALTS = {
    "ref": "exact",
    "fast": "exact",
}
BACKEND_CACHE_SALTS["extra"] = "approx"
