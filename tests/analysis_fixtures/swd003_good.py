"""SWD003 fixture: the kernel stays float64 end to end."""

import numpy as np


def kernel(x):
    y = np.asarray(x, dtype=np.float64)
    return y * np.float64(2.0)
