"""SWD007 fixture: broad exception handlers that swallow silently."""


def bare_swallow(job):
    try:
        return job()
    except:  # noqa: E722
        pass


def broad_swallow(job):
    try:
        return job()
    except Exception:
        pass


def base_swallow(job):
    try:
        return job()
    except BaseException:
        ...


def tuple_swallow(job):
    try:
        return job()
    except (ValueError, Exception):
        pass


def loop_swallow(jobs):
    done = []
    for job in jobs:
        try:
            done.append(job())
        except Exception:
            continue
    return done


def docstring_only_swallow(job):
    try:
        return job()
    except Exception:
        "the failure is fine"
