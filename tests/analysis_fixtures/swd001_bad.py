"""SWD001 fixture: ambient (unseeded) randomness — every line flagged."""

import random

import numpy as np

noise = np.random.normal(0.0, 1.0, 8)
rng = np.random.default_rng()
value = random.random()
