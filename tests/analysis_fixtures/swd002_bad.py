"""SWD002 fixture: a config field that never reaches the cache key."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SwordfishConfig:
    quantization: str = "FPP 16-16"
    seed: int = 0
    new_knob: float = 1.0      # missing from to_dict/cache_key: flagged

    def to_dict(self) -> dict:
        return {"quantization": self.quantization, "seed": self.seed}

    def cache_key(self) -> str:
        payload = self.to_dict()
        return str(sorted(payload.items()))
