"""SWD011 fixture: every resource is kept, cleaned up, or handed off."""

import asyncio
from concurrent.futures import ThreadPoolExecutor


async def _send(payload):
    await asyncio.sleep(0)


async def supervised(payload):
    task = asyncio.create_task(_send(payload))
    await task


def fan_out(jobs):
    pool = ThreadPoolExecutor(2)
    try:
        for job in jobs:
            pool.submit(job)
    finally:
        pool.shutdown(False)


def lease():
    pool = ThreadPoolExecutor(2)
    return pool


class Runner:
    def __init__(self):
        self._pool = ThreadPoolExecutor(2)

    def close(self):
        self._pool.shutdown(False)
