"""SWD001 fixture: all randomness flows from explicit seeds."""

import numpy as np

rng = np.random.default_rng(1234)
noise = rng.normal(0.0, 1.0, 8)
children = np.random.SeedSequence(7).spawn(4)
