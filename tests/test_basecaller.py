"""Tests for the Bonito-style basecaller (model, chunking, decode, eval)."""

import numpy as np
import pytest

from repro import nn
from repro.basecaller import (
    BonitoConfig,
    BonitoModel,
    TrainConfig,
    basecall_read,
    basecall_signal,
    chunk_read,
    evaluate_accuracy,
    make_training_chunks,
    quality_from_logits,
    train_model,
)
from repro.genomics import dataset_reads


class TestModelStructure:
    def test_output_shape(self, rng):
        model = BonitoModel(BonitoConfig(conv_channels=(8, 16),
                                         lstm_hidden=12))
        signal = rng.standard_normal((2, 200))
        out = model(nn.Tensor(signal))
        assert out.shape == (2, model.frames_for(200), 5)

    def test_1d_input_promoted(self, rng):
        model = BonitoModel(BonitoConfig(conv_channels=(8,), lstm_hidden=8))
        out = model(nn.Tensor(rng.standard_normal(100)))
        assert out.shape[0] == 1 and out.shape[2] == 5

    def test_invalid_rank_rejected(self, rng):
        model = BonitoModel(BonitoConfig(conv_channels=(8,), lstm_hidden=8))
        with pytest.raises(ValueError):
            model(nn.Tensor(rng.standard_normal((2, 3, 4))))

    def test_vmm_layers_enumerated(self):
        model = BonitoModel(BonitoConfig())
        names = [name for name, _ in model.vmm_layers()]
        assert names == ["conv0", "conv1", "lstm0", "lstm1", "skip",
                         "decoder"]

    def test_skip_optional(self):
        model = BonitoModel(BonitoConfig(use_skip=False))
        names = [name for name, _ in model.vmm_layers()]
        assert "skip" not in names

    def test_alternating_lstm_directions(self):
        model = BonitoModel(BonitoConfig(num_lstm_layers=3))
        directions = [layer.reverse for layer in model.recurrent]
        assert directions == [True, False, True]

    def test_matmul_hook_roundtrip(self, rng):
        model = BonitoModel(BonitoConfig(conv_channels=(8,), lstm_hidden=8))
        signal = rng.standard_normal((1, 120))
        with nn.no_grad():
            exact = model(nn.Tensor(signal)).data
        seen = []
        model.set_matmul_hook(
            lambda x, w, name, slot: (seen.append(name), x @ w)[1])
        with nn.no_grad():
            hooked = model(nn.Tensor(signal)).data
        model.set_matmul_hook(None)
        assert np.allclose(exact, hooked, atol=1e-10)
        assert set(seen) == {name for name, _ in model.vmm_layers()}

    def test_cache_key_stable(self):
        a = BonitoConfig()
        b = BonitoConfig()
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != BonitoConfig(lstm_hidden=99).cache_key()


class TestChunking:
    def test_chunk_read_targets_within_window(self):
        reads = dataset_reads("D1", num_reads=2)
        for read in reads:
            chunks = chunk_read(read, 192)
            boundaries = np.concatenate(([0], np.cumsum(read.dwells)))
            for i, chunk in enumerate(chunks):
                assert len(chunk.signal) == 192
                assert len(chunk.target) >= 4
                assert np.all(chunk.target >= 0) and np.all(chunk.target <= 3)

    def test_make_training_chunks_count(self):
        chunks = make_training_chunks(num_chunks=10, chunk_samples=192,
                                      genome_size=15_000, seed=11)
        assert len(chunks) == 10
        assert all(len(c.signal) == 192 for c in chunks)

    def test_chunks_deterministic(self):
        a = make_training_chunks(num_chunks=5, genome_size=15_000, seed=42)
        b = make_training_chunks(num_chunks=5, genome_size=15_000, seed=42)
        assert np.array_equal(a[0].signal, b[0].signal)


class TestTraining:
    def test_loss_decreases(self, tiny_chunks):
        model = BonitoModel(BonitoConfig(conv_channels=(8, 16),
                                         lstm_hidden=16, seed=3))
        losses = train_model(model, tiny_chunks,
                             TrainConfig(epochs=3, lr=8e-3))
        assert losses[-1] < losses[0]
        assert not model.training  # left in eval mode

    def test_empty_chunks_rejected(self):
        model = BonitoModel(BonitoConfig(conv_channels=(8,), lstm_hidden=8))
        with pytest.raises(ValueError):
            train_model(model, [], TrainConfig(epochs=1))

    def test_weight_perturb_called_and_undone(self, tiny_chunks):
        model = BonitoModel(BonitoConfig(conv_channels=(8, 16),
                                         lstm_hidden=16, seed=3))
        param = model.decoder.weight
        events = []

        def perturb(m):
            saved = param.data.copy()
            param.data = param.data + 1000.0
            events.append("perturb")

            def undo():
                param.data = saved
                events.append("undo")

            return undo

        train_model(model, tiny_chunks[:16],
                    TrainConfig(epochs=1, batch_size=16), weight_perturb=perturb)
        assert events and events[0] == "perturb"
        assert abs(param.data).max() < 100.0  # clean weights restored


class TestDecodeAndEvaluate:
    def test_basecall_types(self, tiny_model):
        reads = dataset_reads("D1", num_reads=1)
        called = basecall_read(tiny_model, reads[0])
        assert called.dtype == np.int8
        if len(called):
            assert called.min() >= 0 and called.max() <= 3

    def test_beam_not_worse_than_greedy_on_average(self, tiny_model):
        reads = dataset_reads("D1", num_reads=3)
        greedy = evaluate_accuracy(tiny_model, reads, beam_width=0)
        beam = evaluate_accuracy(tiny_model, reads, beam_width=4)
        assert beam.mean_percent >= greedy.mean_percent - 5.0

    def test_evaluate_report_fields(self, tiny_model):
        reads = dataset_reads("D1", num_reads=3)
        report = evaluate_accuracy(tiny_model, reads)
        assert report.identities.shape == (3,)
        assert 0.0 <= report.mean_percent <= 100.0
        assert report.total_bases == report.called_lengths.sum()

    def test_evaluate_empty_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            evaluate_accuracy(tiny_model, [])

    def test_quality_from_logits(self):
        log_probs = np.log(np.array([[0.9, 0.05, 0.05],
                                     [0.4, 0.3, 0.3]]) + 1e-12)
        quals = quality_from_logits(log_probs)
        assert quals[0] > quals[1] >= 0

    def test_trained_model_beats_untrained_on_loss(self, tiny_model,
                                                   tiny_chunks):
        """Alignment identity has a ~50% chance floor, so compare the CTC
        loss, which is monotone in actual model quality."""
        untrained = BonitoModel(BonitoConfig(conv_channels=(8, 16),
                                             lstm_hidden=16, seed=99))

        def mean_loss(model):
            losses = []
            for chunk in tiny_chunks[:8]:
                logits = model(nn.Tensor(chunk.signal[None, :]))
                loss = nn.ctc_loss(logits.detach(),
                                   [chunk.target.astype(np.int64) + 1])
                losses.append(float(loss.data))
            return np.mean(losses)

        assert mean_loss(tiny_model) < mean_loss(untrained)
