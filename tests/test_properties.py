"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.crossbar import (
    DeviceConfig,
    conductance_to_weight,
    weight_to_conductance,
)
from repro.genomics import (
    decode_bases,
    encode_bases,
    global_align,
    normalize_signal,
    reverse_complement,
)

arrays = st.lists(
    st.floats(min_value=-100, max_value=100,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=32,
).map(np.asarray)

base_seqs = st.lists(st.integers(0, 3), min_size=0, max_size=50).map(
    lambda xs: np.asarray(xs, dtype=np.int8)
)


class TestAutogradProperties:
    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_softmax_is_distribution(self, values):
        s = nn.Tensor(values).softmax(axis=-1).data
        assert np.all(s >= 0)
        assert np.isclose(s.sum(), 1.0)

    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_consistent(self, values):
        t = nn.Tensor(values)
        assert np.allclose(t.log_softmax(axis=-1).data,
                           np.log(t.softmax(axis=-1).data + 1e-300),
                           atol=1e-6)

    @given(arrays, arrays)
    @settings(max_examples=40, deadline=None)
    def test_add_commutes(self, a, b):
        size = min(len(a), len(b))
        x = nn.Tensor(a[:size])
        y = nn.Tensor(b[:size])
        assert np.allclose((x + y).data, (y + x).data)

    @given(arrays)
    @settings(max_examples=30, deadline=None)
    def test_sum_grad_is_ones(self, values):
        x = nn.Tensor(values, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, 1.0)


class TestQuantizationProperties:
    @given(arrays, st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, values, bits):
        once = nn.quantize_symmetric(values, bits)
        twice = nn.quantize_symmetric(once, bits)
        assert np.allclose(once, twice)

    @given(arrays, st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=60, deadline=None)
    def test_bounded_error(self, values, bits):
        step = nn.quantization_step(values, bits)
        q = nn.quantize_symmetric(values, bits)
        assert np.abs(q - values).max() <= step / 2 + 1e-9

    @given(arrays, st.sampled_from([4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_sign_preserved(self, values, bits):
        q = nn.quantize_symmetric(values, bits)
        # Quantization may zero small values but never flips signs.
        assert np.all(q * values >= -1e-12)


class TestGenomicsProperties:
    @given(base_seqs)
    @settings(max_examples=50, deadline=None)
    def test_revcomp_involution(self, seq):
        assert np.array_equal(reverse_complement(reverse_complement(seq)),
                              seq)

    @given(base_seqs)
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip(self, seq):
        assert np.array_equal(encode_bases(decode_bases(seq)), seq)

    @given(base_seqs)
    @settings(max_examples=40, deadline=None)
    def test_self_alignment_perfect(self, seq):
        result = global_align(seq, seq)
        assert result.identity == 1.0
        assert result.matches == len(seq)

    @given(base_seqs, base_seqs)
    @settings(max_examples=40, deadline=None)
    def test_identity_bounds(self, a, b):
        identity = global_align(a, b).identity
        assert 0.0 <= identity <= 1.0

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                              allow_nan=False), min_size=4, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_normalize_signal_median_zero(self, values):
        out = normalize_signal(np.asarray(values))
        assert abs(np.median(out)) < 1e-9


class TestDeviceProperties:
    @given(st.lists(st.floats(min_value=-5, max_value=5,
                              allow_nan=False), min_size=1, max_size=64),
           st.integers(4, 64))
    @settings(max_examples=40, deadline=None)
    def test_conductance_roundtrip_bounded(self, weights, levels):
        device = DeviceConfig(nonlinearity=0.0, levels=levels)
        w = np.asarray(weights)
        w_max = max(float(np.abs(w).max()), 1e-9)
        g_pos, g_neg = weight_to_conductance(w, w_max, device)
        decoded = conductance_to_weight(g_pos, g_neg, w_max, device)
        # Error bounded by one conductance-grid step (in weight units).
        step = w_max / (levels - 1)
        assert np.abs(decoded - w).max() <= step / 2 + 1e-9
        # Physical window respected.
        for g in (g_pos, g_neg):
            assert np.all(g >= device.g_min - 1e-15)
            assert np.all(g <= device.g_max + 1e-15)
