"""Tests for the experiment-results summary aggregator."""

import json

from repro.experiments import summary


def _write(tmp_path, experiment_id, rows, settings=None):
    payload = {"experiment_id": experiment_id, "description": "",
               "settings": settings or {}, "rows": rows}
    (tmp_path / f"{experiment_id}.json").write_text(json.dumps(payload))


class TestSummary:
    def test_empty_directory(self, tmp_path):
        assert summary.summarize(summary.load_records(tmp_path)) \
            == "no experiment records found"

    def test_load_records_keys_by_id(self, tmp_path):
        _write(tmp_path, "fig01_pipeline",
               [{"stage": "basecalling", "seconds": 1.0, "fraction": 0.6}])
        records = summary.load_records(tmp_path)
        assert set(records) == {"fig01_pipeline"}

    def test_summarize_known_sections(self, tmp_path):
        _write(tmp_path, "fig01_pipeline",
               [{"stage": "basecalling", "seconds": 1.0, "fraction": 0.6},
                {"stage": "read_mapping", "seconds": 0.5, "fraction": 0.4}])
        _write(tmp_path, "fig14_throughput",
               [{"dataset": "D1", "variant": "ideal", "kbps": 1000.0,
                 "speedup_vs_gpu": 400.0}])
        _write(tmp_path, "tab03_quantization",
               [{"dataset": "D1", "config": "FPP 16-16", "accuracy": 88.0}])
        report = summary.summarize(summary.load_records(tmp_path))
        assert "Fig. 1" in report
        assert "Fig. 14" in report
        assert "Table 3" in report
        assert "413.6" in report  # paper reference surfaced
        assert "basecalling" in report

    def test_main_prints(self, tmp_path, capsys):
        _write(tmp_path, "fig01_pipeline",
               [{"stage": "basecalling", "seconds": 1.0, "fraction": 1.0}])
        summary.main(str(tmp_path))
        assert "Fig. 1" in capsys.readouterr().out
