"""Tests for the genomics substrate (genome, pore model, signal, reads)."""

import numpy as np
import pytest

from repro import genomics as g


class TestGenome:
    def test_paper_registry(self):
        assert [s.name for s in g.PAPER_DATASETS] == ["D1", "D2", "D3", "D4"]
        d3 = g.get_dataset("D3")
        assert d3.reference_size == 5_134_281
        assert d3.num_reads == 11_047
        with pytest.raises(KeyError):
            g.get_dataset("D9")

    def test_genome_deterministic_and_cached(self):
        a = g.random_genome(1000, seed=5)
        b = g.random_genome(1000, seed=5)
        assert a is b  # cached
        c = g.random_genome(1000, seed=6)
        assert not np.array_equal(a, c)

    def test_gc_content_respected(self):
        genome = g.random_genome(100_000, gc_content=0.7, seed=1)
        gc = ((genome == 1) | (genome == 2)).mean()
        assert abs(gc - 0.7) < 0.02

    def test_genome_validation(self):
        with pytest.raises(ValueError):
            g.random_genome(0)
        with pytest.raises(ValueError):
            g.random_genome(10, gc_content=1.5)

    def test_encode_decode_roundtrip(self):
        seq = "ACGTACGT"
        assert g.decode_bases(g.encode_bases(seq)) == seq
        with pytest.raises(ValueError):
            g.encode_bases("ACGN")

    def test_reverse_complement(self):
        codes = g.encode_bases("AACG")
        assert g.decode_bases(g.reverse_complement(codes)) == "CGTT"
        # Involution property.
        assert np.array_equal(
            g.reverse_complement(g.reverse_complement(codes)), codes)


class TestPoreModel:
    def test_table_shape_and_determinism(self):
        pore = g.default_pore_model()
        assert pore.num_kmers == 64
        assert pore.level_mean.shape == (64,)
        pore2 = g.default_pore_model()
        assert pore is pore2  # cached

    def test_levels_realistic_range(self):
        pore = g.default_pore_model()
        assert 60 < pore.level_mean.mean() < 120
        assert pore.level_stdv.min() > 0

    def test_kmer_index(self):
        pore = g.default_pore_model(k=2, seed=1)
        idx = pore.kmer_index(np.array([0, 1, 2, 3], dtype=np.int8))
        assert list(idx) == [1, 6, 11]  # 0*4+1, 1*4+2, 2*4+3

    def test_kmer_index_too_short(self):
        pore = g.default_pore_model()
        with pytest.raises(ValueError):
            pore.kmer_index(np.array([0, 1], dtype=np.int8))

    def test_similar_kmers_correlated(self):
        """Additive structure: k-mers sharing the centre base cluster."""
        pore = g.default_pore_model()
        levels = pore.level_mean.reshape(4, 4, 4)
        # Variance explained by the centre base should dominate.
        centre_means = levels.mean(axis=(0, 2))
        between = centre_means.var()
        total = levels.var()
        assert between / total > 0.5


class TestSignal:
    def test_squiggle_length_matches_dwells(self, rng):
        bases = g.random_genome(50, seed=3)
        signal, dwells = g.simulate_squiggle(bases, rng)
        assert len(signal) == dwells.sum()
        assert len(dwells) == 50 - g.default_pore_model().k + 1

    def test_min_dwell_respected(self, rng):
        config = g.SquiggleConfig(min_dwell=3)
        bases = g.random_genome(40, seed=3)
        _, dwells = g.simulate_squiggle(bases, rng, config=config)
        assert dwells.min() >= 3

    def test_noise_scale_zero_is_clean(self, rng):
        config = g.SquiggleConfig(noise_scale=0.0, drift_sigma=0.0)
        bases = g.random_genome(30, seed=3)
        signal, dwells = g.simulate_squiggle(bases, rng, config=config)
        pore = g.default_pore_model()
        means, _ = pore.levels_for(bases)
        assert np.allclose(signal, np.repeat(means, dwells))

    def test_normalize_signal(self, rng):
        signal = rng.standard_normal(1000) * 13 + 90
        normalized = g.normalize_signal(signal)
        assert abs(np.median(normalized)) < 1e-9
        assert 0.5 < normalized.std() < 2.0

    def test_normalize_constant_signal(self):
        out = g.normalize_signal(np.full(10, 5.0))
        assert np.allclose(out, 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            g.SquiggleConfig(samples_per_base=0)
        with pytest.raises(ValueError):
            g.SquiggleConfig(min_dwell=0)


class TestReads:
    def test_sample_reads_fields(self, rng):
        genome = g.random_genome(5000, seed=9)
        reads = g.sample_reads(genome, 5, rng, mean_length=100)
        assert len(reads) == 5
        for read in reads:
            assert read.num_samples == len(read.raw_signal)
            assert read.strand in (-1, 1)
            assert 0 <= read.position < len(genome)
            assert len(read.bases) >= 60

    def test_forward_read_matches_genome(self, rng):
        genome = g.random_genome(5000, seed=9)
        for read in g.sample_reads(genome, 20, rng, mean_length=100):
            if read.strand > 0:
                fragment = genome[read.position:read.position + len(read.bases)]
                assert np.array_equal(read.bases, fragment)
                break
        else:
            pytest.skip("no forward read drawn")

    def test_dataset_reads_deterministic(self):
        reads1 = g.dataset_reads("D1", num_reads=3)
        reads2 = g.dataset_reads("D1", num_reads=3)
        assert np.array_equal(reads1[0].signal, reads2[0].signal)
        reads3 = g.dataset_reads("D1", num_reads=3, seed_offset=1)
        assert not np.array_equal(reads1[0].signal, reads3[0].signal)

    def test_datasets_differ(self):
        r1 = g.dataset_reads("D1", num_reads=1)[0]
        r2 = g.dataset_reads("D2", num_reads=1)[0]
        assert not np.array_equal(r1.bases, r2.bases)

    def test_short_genome_rejected(self, rng):
        with pytest.raises(ValueError):
            g.sample_reads(g.random_genome(10, seed=1), 1, rng)
