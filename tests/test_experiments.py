"""Smoke tests for the per-figure experiment runners.

Runners are exercised at minimal scale with the tiny trained model
substituted for the full baseline, verifying row structure and basic
paper-shape invariants without the cost of full experiments.
"""

import numpy as np
import pytest

from repro.core import EnhanceConfig
from tests.conftest import TINY_CONFIG

FAST_ENHANCE = EnhanceConfig(retrain_epochs=1, online_epochs=1,
                             num_chunks=24)


@pytest.fixture(autouse=True)
def tiny_baseline(tiny_trained, monkeypatch):
    """Substitute the tiny model for the shared pretrained baseline."""
    from repro.basecaller import BonitoModel
    import repro.experiments.common as common

    def fake_clone(config=None):
        clone = BonitoModel(TINY_CONFIG)
        clone.load_state_dict(tiny_trained.state_dict())
        clone.eval()
        return clone

    monkeypatch.setattr(common, "baseline_clone", fake_clone)
    for module_name in ("fig01_pipeline", "tab03_quantization",
                        "fig07_write_variation", "fig08_nonidealities",
                        "fig10_enhance_quant", "fig11_enhance_writevar",
                        "fig12_enhance_nonideal", "fig14_throughput",
                        "fig15_area_accuracy"):
        module = __import__(f"repro.experiments.{module_name}",
                            fromlist=[module_name])
        if hasattr(module, "baseline_clone"):
            monkeypatch.setattr(module, "baseline_clone", fake_clone)


class TestCommon:
    def test_env_scale(self, monkeypatch):
        from repro.experiments.common import env_scale, scaled
        monkeypatch.setenv("SWORDFISH_SCALE", "0.5")
        assert env_scale() == 0.5
        assert scaled(10) == 5
        assert scaled(1, minimum=1) == 1
        monkeypatch.setenv("SWORDFISH_SCALE", "-1")
        with pytest.raises(ValueError):
            env_scale()

    def test_evaluation_reads_cached(self):
        from repro.experiments.common import evaluation_reads
        a = evaluation_reads("D1", 2)
        b = evaluation_reads("D1", 2)
        assert np.array_equal(a[0].signal, b[0].signal)


class TestRunners:
    def test_fig01(self):
        from repro.experiments import fig01_pipeline
        record = fig01_pipeline.run(num_reads=2)
        stages = [r["stage"] for r in record.rows]
        assert stages == ["basecalling", "read_mapping", "polishing",
                          "variant_calling"]
        fractions = [r["fraction"] for r in record.rows]
        assert np.isclose(sum(fractions), 1.0)
        # Paper's headline: basecalling dominates.
        assert record.rows[0]["fraction"] == max(fractions)

    def test_tab03(self):
        from repro.experiments import tab03_quantization
        record = tab03_quantization.run(num_reads=2, datasets=("D1",))
        assert len(record.rows) == 7
        by_config = {r["config"]: r["accuracy"] for r in record.rows}
        # 16-bit must track the float baseline closely.
        assert abs(by_config["FPP 16-16"] - by_config["DFP 32-32"]) < 3.0

    def test_fig07(self):
        from repro.experiments import fig07_write_variation
        record = fig07_write_variation.run(
            rates=(0.0, 0.4), num_reads=2, num_runs=1, datasets=("D1",))
        assert len(record.rows) == 2
        clean = record.rows[0]["accuracy"]
        noisy = record.rows[1]["accuracy"]
        assert clean > noisy  # write variation hurts

    def test_fig08(self):
        from repro.experiments import fig08_nonidealities
        record = fig08_nonidealities.run(
            crossbar_size=64, num_reads=2, num_runs=1, datasets=("D1",),
            bundles=("dac_driver",))
        assert record.rows[0]["bundle"] == "dac_driver"
        assert 0 <= record.rows[0]["accuracy"] <= 100

    def test_fig10(self):
        from repro.experiments import fig10_enhance_quant
        record = fig10_enhance_quant.run(
            num_reads=2, datasets=("D1",), techniques=("vat",),
            enhance=FAST_ENHANCE)
        assert {r["technique"] for r in record.rows} == {"vat"}
        assert len(record.rows) == 6  # six FPP configs × one dataset

    def test_fig11(self):
        from repro.experiments import fig11_enhance_writevar
        record = fig11_enhance_writevar.run(
            rates=(0.1,), techniques=("rvw",), num_reads=2,
            datasets=("D1",), enhance=FAST_ENHANCE)
        assert len(record.rows) == 1

    def test_fig12(self):
        from repro.experiments import fig12_enhance_nonideal
        record = fig12_enhance_nonideal.run(
            crossbar_size=64, techniques=("none",),
            bundles=("dac_driver",), num_reads=2, datasets=("D1",),
            enhance=FAST_ENHANCE)
        assert len(record.rows) == 1

    def test_fig14_shape(self):
        from repro.experiments import fig14_throughput
        record = fig14_throughput.run(datasets=("D1",))
        speedups = {r["variant"]: r["speedup_vs_gpu"] for r in record.rows}
        assert speedups["ideal"] > speedups["rsa_kd"] > speedups["rsa"]
        assert speedups["rvw"] < speedups["rsa"]

    def test_fig15_area_monotone(self):
        from repro.experiments import fig15_area_accuracy
        record = fig15_area_accuracy.run(
            sizes=(64,), fractions=(0.0, 0.05), num_reads=2,
            datasets=("D1",), bundle="write_only", enhance=FAST_ENHANCE)
        assert len(record.rows) == 2
        assert record.rows[1]["area_mm2"] > record.rows[0]["area_mm2"]
