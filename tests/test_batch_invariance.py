"""Batch-composition invariance: stacking never changes a row's result.

Per-sample DAC scaling normalizes every batch row against its **own**
magnitude, and per-call mismatch draws depend only on the call count —
so a signal's VMM (and its basecall) must be bitwise-identical whether
it runs alone or stacked with arbitrary other signals.  This file pins
that contract at three layers:

* **BLAS platform probe** — the batched kernel pads single-row calls up
  to ``engine._MIN_KERNEL_BATCH`` because one-row matmuls may take a
  gemv code path whose accumulation order differs from gemm at the last
  ulp.  The probe asserts the property the padding relies on: within
  the gemm regime (two or more rows), each row's product is
  bitwise-independent of the batch size and of the other rows' content.
* **Raw engine path** — ``CrossbarBank.vmm`` row equality across batch
  compositions, on both backends, with tile RNG states restored between
  calls (hypothesis-driven compositions).
* **Serve path** — ``BasecallEngine.basecall_batch`` returns, for every
  read, exactly what ``basecall`` returns for that read alone
  (hypothesis-driven stackmates).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crossbar import (
    ADCConfig,
    CrossbarBank,
    CrossbarConfig,
    DACConfig,
    DeviceConfig,
    VariationConfig,
    WireConfig,
    apply_dac,
)
from repro.crossbar.engine import _MIN_KERNEL_BATCH
from repro.serve import BasecallEngine, EngineConfig

#: A bank config exercising the full DAC -> noise -> droop -> ADC chain.
NOISY_CONFIG = CrossbarConfig(
    size=32,
    device=DeviceConfig(read_noise=0.02),
    variation=VariationConfig(0.05, 0.02, 0.01, 0.01),
    wire=WireConfig(segment_ohm=1.5, sneak_coupling=0.005),
    dac=DACConfig(bits=6, r_load=0.1, gain_std=0.01, offset_std=0.01),
    adc=ADCConfig(bits=7, gain_std=0.01, offset_std=0.01, inl=0.02),
)


def rng_states(bank):
    return [tile._rng.bit_generator.state for tile in bank._flat_tiles()]


def rng_restore(bank, states):
    for tile, state in zip(bank._flat_tiles(), states):
        tile._rng.bit_generator.state = state


# ----------------------------------------------------------------------
# BLAS platform probe
# ----------------------------------------------------------------------

class TestBlasPlatformProbe:
    """The numerical assumptions behind ``engine._MIN_KERNEL_BATCH``."""

    # Representative kernel shapes: full tile, partial-block LSTM bank,
    # and the widest stacked operand a 64-tile grid row produces.
    SHAPES = [(64, 64), (48, 192), (64, 320)]

    @pytest.mark.parametrize("shape", SHAPES)
    def test_gemm_rows_are_content_independent(self, shape):
        """Row i of ``X @ W`` (B >= 2) never depends on rows != i."""
        rows, cols = shape
        rng = np.random.default_rng(rows * 1000 + cols)
        w = rng.standard_normal((rows, cols))
        x0 = rng.standard_normal(rows)
        reference = None
        for batch in range(_MIN_KERNEL_BATCH, 9):
            for fill_seed in range(3):
                others = np.random.default_rng(fill_seed).standard_normal(
                    (batch - 1, rows)) * 10.0 ** fill_seed
                stacked = np.vstack([x0[None, :], others])
                row = (stacked @ w)[0]
                if reference is None:
                    reference = row
                assert np.array_equal(row, reference), (
                    f"gemm row varies with batch composition at {shape}: "
                    f"batch={batch} fill_seed={fill_seed}")

    @pytest.mark.parametrize("shape", SHAPES)
    def test_padding_hides_any_gemv_gemm_gap(self, shape):
        """Whether or not this platform's gemv matches its gemm, the
        padded batched kernel must make B=1 equal any stacked row."""
        rows, cols = shape
        rng = np.random.default_rng(7)
        w = rng.standard_normal((rows, cols))
        x0 = rng.standard_normal(rows)
        padded = np.vstack([x0[None, :],
                            np.zeros((_MIN_KERNEL_BATCH - 1, rows))])
        gemm_row = (padded @ w)[0]
        stacked = np.vstack([x0[None, :], rng.standard_normal((3, rows))])
        assert np.array_equal((stacked @ w)[0], gemm_row)


# ----------------------------------------------------------------------
# Per-sample DAC scale semantics
# ----------------------------------------------------------------------

class TestPerSampleScale:
    def test_each_row_quantized_against_its_own_magnitude(self):
        """A tiny row keeps its DAC resolution next to a huge row."""
        config = DACConfig(bits=6)
        tiny = np.linspace(-1e-3, 1e-3, 16)
        huge = np.linspace(-1e3, 1e3, 16)
        stacked = apply_dac(np.stack([tiny, huge]), config)
        solo = apply_dac(tiny[None, :], config)
        assert np.array_equal(stacked[0], solo[0])
        # Under the old batch-max scale, the tiny row would quantize to
        # all-zero voltages; per-sample scale must preserve its shape.
        assert np.any(stacked[0] != 0.0)

    def test_scale_floor_keeps_zero_rows_finite(self):
        out = apply_dac(np.zeros((2, 8)), DACConfig(bits=6, r_load=0.1))
        assert np.all(np.isfinite(out))
        assert np.array_equal(out, np.zeros((2, 8)))


# ----------------------------------------------------------------------
# Raw engine path
# ----------------------------------------------------------------------

class TestEngineComposition:
    @pytest.fixture(scope="class")
    def banks(self):
        w = np.random.default_rng(99).standard_normal((70, 50))
        return {backend: CrossbarBank(w, NOISY_CONFIG, 7, backend=backend)
                for backend in ("loop", "batched")}

    @pytest.mark.parametrize("backend", ["loop", "batched"])
    @settings(deadline=None, max_examples=20)
    @given(data=st.data())
    def test_vmm_row_independent_of_batch(self, banks, backend, data):
        bank = banks[backend]
        epoch = rng_states(bank)
        x0 = np.random.default_rng(
            data.draw(st.integers(0, 2 ** 16), label="signal_seed")
        ).standard_normal(70)
        extra = data.draw(st.integers(0, 6), label="extra_rows")
        position = data.draw(st.integers(0, extra), label="position")
        magnitude = 10.0 ** data.draw(st.integers(-3, 3), label="magnitude")

        rng_restore(bank, epoch)
        solo = bank.vmm(x0[None, :])[0]

        others = np.random.default_rng(extra + 1).standard_normal(
            (extra, 70)) * magnitude
        stacked = np.insert(others, position, x0, axis=0)
        rng_restore(bank, epoch)
        row = bank.vmm(stacked)[position]
        assert np.array_equal(row, solo)


# ----------------------------------------------------------------------
# Serve path
# ----------------------------------------------------------------------

class TestServeComposition:
    @pytest.fixture(scope="class")
    def engine(self, tiny_trained):
        return BasecallEngine(tiny_trained,
                              EngineConfig(bundle="combined", seed=3))

    @settings(deadline=None, max_examples=10)
    @given(data=st.data())
    def test_stacked_read_matches_solo(self, engine, data):
        samples = 64
        mk = lambda seed: np.random.default_rng(seed).standard_normal(samples)
        signal = mk(data.draw(st.integers(0, 2 ** 16), label="read_seed"))
        extra = data.draw(st.integers(0, 3), label="stackmates")
        position = data.draw(st.integers(0, extra), label="position")
        stackmates = [mk(1000 + k) for k in range(extra)]
        batch = stackmates[:position] + [signal] + stackmates[position:]

        solo = engine.basecall(signal)
        outcomes = engine.basecall_batch(batch)
        assert not any(isinstance(o, Exception) for o in outcomes)
        stacked = outcomes[position]
        assert stacked.bases == solo.bases
        assert stacked.frames == solo.frames

    def test_mixed_lengths_group_correctly(self, engine):
        """Unequal-length reads form separate stacks, same results."""
        short = np.random.default_rng(1).standard_normal(64)
        long = np.random.default_rng(2).standard_normal(96)
        solo_short = engine.basecall(short)
        solo_long = engine.basecall(long)
        outcomes = engine.basecall_batch([long, short, long, short])
        assert [o.bases for o in outcomes] == [
            solo_long.bases, solo_short.bases,
            solo_long.bases, solo_short.bases]

    def test_invalid_read_isolated(self, engine):
        """A bad signal yields its own error entry, not a group failure."""
        good = np.random.default_rng(5).standard_normal(64)
        solo = engine.basecall(good)
        outcomes = engine.basecall_batch(
            [good, np.empty(0), np.zeros((2, 2))])
        assert outcomes[0].bases == solo.bases
        assert isinstance(outcomes[1], ValueError)
        assert isinstance(outcomes[2], ValueError)
