"""Tests for the extension layers (GRU, LayerNorm, GELU) and chunked
long-read basecalling."""

import numpy as np
import pytest

from repro import nn
from repro.basecaller import basecall_chunked, basecall_signal
from repro.genomics import normalize_signal, random_genome, sample_reads, simulate_squiggle, read_accuracy
from .test_tensor import check_grad


class TestGRU:
    def test_shapes_and_vmm(self, rng):
        gru = nn.GRU(3, 5, rng=rng)
        out = gru(nn.Tensor(rng.standard_normal((2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert gru.vmm_shapes() == [(3, 15), (5, 15)]

    def test_grad(self, rng):
        gru = nn.GRU(2, 3, rng=rng)
        x = nn.Tensor(rng.standard_normal((1, 4, 2)), requires_grad=True)
        check_grad(lambda: (gru(x) ** 2).sum(), gru.weight_ih, tol=1e-5)
        check_grad(lambda: (gru(x) ** 2).sum(), gru.weight_hh, tol=1e-5)
        check_grad(lambda: (gru(x) ** 2).sum(), x, tol=1e-5)

    def test_reverse_flips_time(self, rng):
        x = rng.standard_normal((1, 6, 3))
        fwd = nn.GRU(3, 4, reverse=False, rng=np.random.default_rng(0))
        rev = nn.GRU(3, 4, reverse=True, rng=np.random.default_rng(0))
        out_fwd = fwd(nn.Tensor(x[:, ::-1].copy())).data
        out_rev = rev(nn.Tensor(x)).data
        assert np.allclose(out_fwd[:, ::-1], out_rev)

    def test_bounded_output(self, rng):
        gru = nn.GRU(3, 4, rng=rng)
        out = gru(nn.Tensor(rng.standard_normal((2, 20, 3)) * 10))
        assert np.abs(out.data).max() <= 1.0 + 1e-9  # tanh-bounded state


class TestLayerNormGELU:
    def test_layernorm_normalizes_rows(self, rng):
        ln = nn.LayerNorm(8)
        x = nn.Tensor(rng.standard_normal((4, 8)) * 7 + 3)
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_shape_check(self, rng):
        with pytest.raises(ValueError):
            nn.LayerNorm(8)(nn.Tensor(rng.standard_normal((2, 4))))

    def test_layernorm_grad(self, rng):
        ln = nn.LayerNorm(5)
        x = nn.Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        check_grad(lambda: (ln(x) ** 2).sum(), ln.gamma, tol=1e-5)
        check_grad(lambda: (ln(x) ** 2).sum(), x, tol=1e-5)

    def test_gelu_known_values(self):
        gelu = nn.GELU()
        x = nn.Tensor(np.array([0.0, 10.0, -10.0]))
        out = gelu(x).data
        assert np.isclose(out[0], 0.0)
        assert np.isclose(out[1], 10.0, atol=1e-3)
        assert np.isclose(out[2], 0.0, atol=1e-3)

    def test_gelu_grad(self, rng):
        gelu = nn.GELU()
        x = nn.Tensor(rng.standard_normal(6), requires_grad=True)
        check_grad(lambda: (gelu(x) ** 2).sum(), x, tol=1e-5)


class TestChunkedBasecalling:
    def test_short_signal_delegates(self, tiny_model, rng):
        signal = rng.standard_normal(300)
        direct = basecall_signal(tiny_model, signal)
        chunked = basecall_chunked(tiny_model, signal, chunk_samples=1024)
        assert np.array_equal(direct, chunked)

    def test_long_read_similar_accuracy(self, tiny_model, rng):
        genome = random_genome(20_000, seed=5)
        reads = sample_reads(genome, 1, rng, mean_length=700,
                             min_length=600)
        read = reads[0]
        full = basecall_signal(tiny_model, read.signal)
        chunked = basecall_chunked(tiny_model, read.signal,
                                   chunk_samples=1024, overlap=128)
        acc_full = read_accuracy(full, read.bases)
        acc_chunked = read_accuracy(chunked, read.bases)
        # Stitching costs little accuracy.
        assert acc_chunked > acc_full - 0.10
        # And produces a similar-length call.
        assert abs(len(chunked) - len(full)) < 0.2 * len(full) + 20

    def test_overlap_validation(self, tiny_model):
        with pytest.raises(ValueError):
            basecall_chunked(tiny_model, np.zeros(5000),
                             chunk_samples=100, overlap=60)
