"""Tile-engine tests: loop/batched equivalence and backend selection.

The ``"batched"`` backend must reproduce the ``"loop"`` reference to
within 1e-9 for identical seeds, across every non-ideality bundle and
for ragged (non-divisible) bank shapes — the contract that makes the
backend a pure performance knob.  Per-tile RNG streams make that
possible: each tile draws from its own spawned generator, so neither
the backend nor the tile evaluation order changes the noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BUNDLES, get_bundle
from repro.crossbar import (
    ADCConfig,
    CrossbarBank,
    CrossbarConfig,
    DACConfig,
    DeviceConfig,
    DriftConfig,
    VariationConfig,
    WireConfig,
    available_backends,
    iter_tile_blocks,
    resolve_backend,
    spawn_generators,
    tile_grid,
)

TOL = 1e-9


def weights_for(shape, seed=99):
    return np.random.default_rng(seed).standard_normal(shape)


def bank_pair(shape, config, seed=7, **kwargs):
    """Identically seeded banks on the two backends."""
    w = weights_for(shape)
    loop = CrossbarBank(w, config, seed, backend="loop", **kwargs)
    batched = CrossbarBank(w, config, seed, backend="batched", **kwargs)
    return loop, batched


def assert_equivalent(loop, batched, x, tol=TOL):
    ya, yb = loop.vmm(x), batched.vmm(x)
    np.testing.assert_allclose(yb, ya, rtol=0.0, atol=tol)


# ----------------------------------------------------------------------
# Geometry helpers
# ----------------------------------------------------------------------

class TestTileGeometry:
    def test_tile_grid_matches_ceil_division(self):
        assert tile_grid((64, 64), 64) == (1, 1)
        assert tile_grid((65, 64), 64) == (2, 1)
        assert tile_grid((1, 129), 64) == (1, 3)

    def test_iter_tile_blocks_covers_matrix_once(self):
        shape, size = (70, 45), 32
        seen = np.zeros(shape, dtype=int)
        for i, j, rs, cs in iter_tile_blocks(shape, size):
            assert 0 <= i < 3 and 0 <= j < 2
            seen[rs, cs] += 1
        assert (seen == 1).all()

    def test_iter_tile_blocks_row_major(self):
        order = [(i, j) for i, j, _, _ in iter_tile_blocks((70, 45), 32)]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]


class TestSpawnGenerators:
    def test_children_are_independent_and_deterministic(self):
        a = spawn_generators(np.random.SeedSequence(5), 4)
        b = spawn_generators(np.random.SeedSequence(5), 4)
        draws_a = [g.standard_normal(3) for g in a]
        draws_b = [g.standard_normal(3) for g in b]
        for da, db in zip(draws_a, draws_b):
            np.testing.assert_array_equal(da, db)
        # distinct streams
        assert not np.allclose(draws_a[0], draws_a[1])

    def test_accepts_int_and_generator(self):
        assert len(spawn_generators(3, 2)) == 2
        assert len(spawn_generators(np.random.default_rng(3), 2)) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_available(self):
        assert set(available_backends()) >= {"loop", "batched"}

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("SWORDFISH_VMM_BACKEND", "batched")
        assert resolve_backend("loop") == "loop"

    def test_env_var_applies(self, monkeypatch):
        monkeypatch.setenv("SWORDFISH_VMM_BACKEND", "loop")
        assert resolve_backend(None) == "loop"
        bank = CrossbarBank(weights_for((10, 10)), CrossbarConfig(size=8), 0)
        assert bank.backend == "loop"

    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("SWORDFISH_VMM_BACKEND", raising=False)
        assert resolve_backend(None) == "batched"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")
        with pytest.raises(ValueError):
            CrossbarConfig(size=8, backend="cuda")

    def test_config_backend_propagates(self):
        config = CrossbarConfig(size=8, backend="loop")
        bank = CrossbarBank(weights_for((10, 10)), config, 0)
        assert bank.backend == "loop"
        assert config.ideal().backend == "loop"

    def test_set_backend_switches_in_place(self):
        bank = CrossbarBank(weights_for((20, 20)), CrossbarConfig(size=8), 0,
                            backend="loop")
        x = weights_for((3, 20), seed=1)
        y_loop = bank.vmm(x)
        bank.set_backend("batched")
        assert bank.backend == "batched"
        assert bank.vmm(x).shape == y_loop.shape


# ----------------------------------------------------------------------
# Loop vs batched equivalence
# ----------------------------------------------------------------------

#: One config per non-ideality family, plus kitchen-sink combinations.
EQUIV_CONFIGS = {
    "quiet": CrossbarConfig(size=16),
    "dac_only": CrossbarConfig(
        size=16, dac=DACConfig(bits=6, r_load=0.3, gain_std=0.02,
                               offset_std=0.01)),
    "adc_only": CrossbarConfig(
        size=16, adc=ADCConfig(bits=6, range_headroom=1.5, gain_std=0.02,
                               offset_std=0.01, inl=0.05)),
    "read_noise": CrossbarConfig(
        size=16, device=DeviceConfig(read_noise=0.05)),
    "stuck_cells": CrossbarConfig(
        size=16, variation=VariationConfig(0.05, 0.05, 0.03, 0.03)),
    "wires": CrossbarConfig(
        size=16, wire=WireConfig(segment_ohm=2.0, sneak_coupling=0.01)),
    "everything": CrossbarConfig(
        size=16,
        device=DeviceConfig(read_noise=0.03),
        variation=VariationConfig(0.05, 0.05, 0.01, 0.01),
        wire=WireConfig(segment_ohm=2.0, sneak_coupling=0.01),
        dac=DACConfig(bits=6, r_load=0.2, gain_std=0.02, offset_std=0.01),
        adc=ADCConfig(bits=7, range_headroom=1.8, gain_std=0.02,
                      offset_std=0.01, inl=0.03)),
}


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(EQUIV_CONFIGS))
    @pytest.mark.parametrize("shape", [(16, 16), (40, 23), (17, 50)])
    def test_single_call(self, name, shape):
        loop, batched = bank_pair(shape, EQUIV_CONFIGS[name])
        x = weights_for((4, shape[0]), seed=11)
        assert_equivalent(loop, batched, x)

    @pytest.mark.parametrize("name", sorted(EQUIV_CONFIGS))
    def test_sequential_calls_share_streams(self, name):
        """Noise draws advance identically across repeated calls."""
        loop, batched = bank_pair((40, 23), EQUIV_CONFIGS[name])
        for call in range(3):
            x = weights_for((2, 40), seed=100 + call)
            assert_equivalent(loop, batched, x)

    @pytest.mark.parametrize("bundle_name", sorted(BUNDLES))
    def test_all_bundles(self, bundle_name):
        """Every paper bundle's design point is backend-independent."""
        config = get_bundle(bundle_name).crossbar_config(
            32, write_variation=0.10)
        loop, batched = bank_pair((70, 45), config)
        x = weights_for((4, 70), seed=21)
        assert_equivalent(loop, batched, x)

    def test_sram_remap_and_update(self):
        config = EQUIV_CONFIGS["everything"]
        loop, batched = bank_pair((40, 23), config)
        assert loop.assign_sram(0.1) == batched.assign_sram(0.1)
        x = weights_for((4, 40), seed=31)
        assert_equivalent(loop, batched, x)
        new_w = weights_for((40, 23), seed=41)
        loop.update_sram_weights(new_w)
        batched.update_sram_weights(new_w)
        assert_equivalent(loop, batched, x)

    def test_random_sram_placement_matches(self):
        loop, batched = bank_pair((40, 23), EQUIV_CONFIGS["stuck_cells"])
        assert (loop.assign_sram(0.2, use_knowledge=False)
                == batched.assign_sram(0.2, use_knowledge=False))
        np.testing.assert_array_equal(loop.sram_matrix(),
                                      batched.sram_matrix())

    def test_reprogram_matches(self):
        loop, batched = bank_pair((40, 23), EQUIV_CONFIGS["stuck_cells"])
        loop.reprogram()
        batched.reprogram()
        np.testing.assert_allclose(batched.effective_matrix(),
                                   loop.effective_matrix(),
                                   rtol=0.0, atol=TOL)
        assert_equivalent(loop, batched, weights_for((4, 40), seed=51))

    def test_age_matches(self):
        loop, batched = bank_pair((40, 23), EQUIV_CONFIGS["quiet"])
        drift = DriftConfig(relaxation_per_decade=0.05, diffusion=0.01)
        loop.age(3600.0, drift)
        batched.age(3600.0, drift)
        assert_equivalent(loop, batched, weights_for((4, 40), seed=61))

    def test_evaluation_order_independent_streams(self):
        """A bank whose tiles were consumed in a different order still
        draws the same per-tile noise (SeedSequence spawning)."""
        config = EQUIV_CONFIGS["read_noise"]
        a = CrossbarBank(weights_for((40, 23)), config, 7, backend="loop")
        b = CrossbarBank(weights_for((40, 23)), config, 7, backend="loop")
        x = weights_for((2, 40), seed=71)
        expected = a.vmm(x)
        # Drain tile noise in reverse order on b, then compare the next
        # call on a fresh pair: streams must be per-tile, not shared.
        for tile in reversed(list(b._flat_tiles())):
            tile.vmm(np.zeros((1, tile.rows)))
        c = CrossbarBank(weights_for((40, 23)), config, 7, backend="loop")
        np.testing.assert_allclose(c.vmm(x), expected, rtol=0.0, atol=0.0)

    @settings(deadline=None, max_examples=25)
    @given(
        rows=st.integers(min_value=1, max_value=70),
        cols=st.integers(min_value=1, max_value=70),
        size=st.integers(min_value=2, max_value=33),
        batch=st.integers(min_value=1, max_value=5),
    )
    def test_property_random_shapes(self, rows, cols, size, batch):
        """Equivalence holds for arbitrary (ragged) bank geometries."""
        config = CrossbarConfig(
            size=size,
            device=DeviceConfig(read_noise=0.02),
            variation=VariationConfig(0.05, 0.02, 0.01, 0.01),
            wire=WireConfig(segment_ohm=1.5, sneak_coupling=0.005),
            dac=DACConfig(bits=6, r_load=0.1, gain_std=0.01,
                          offset_std=0.01),
            adc=ADCConfig(bits=7, gain_std=0.01, offset_std=0.01,
                          inl=0.02),
        )
        loop, batched = bank_pair((rows, cols), config, seed=rows * 97 + cols)
        x = np.random.default_rng(batch).standard_normal((batch, rows))
        assert_equivalent(loop, batched, x)


# ----------------------------------------------------------------------
# Vectorized whole-matrix views
# ----------------------------------------------------------------------

class TestAssembledViews:
    def reference_effective(self, bank):
        """Pre-engine double-loop reconstruction."""
        out = np.zeros(bank.shape)
        size = bank.config.size
        for i, tile_row in enumerate(bank.tiles):
            col = 0
            for tile in tile_row:
                block = np.where(tile.sram_mask, tile.ideal_weights,
                                 tile.effective_weights)
                out[i * size:i * size + tile.rows,
                    col:col + tile.cols] = block
                col += tile.cols
        return out

    @pytest.mark.parametrize("shape", [(16, 16), (40, 23), (17, 50)])
    def test_effective_matrix_matches_reference(self, shape):
        bank = CrossbarBank(weights_for(shape),
                            EQUIV_CONFIGS["stuck_cells"], 7)
        bank.assign_sram(0.1)
        np.testing.assert_array_equal(bank.effective_matrix(),
                                      self.reference_effective(bank))

    def test_error_severity_matches_tiles(self):
        bank = CrossbarBank(weights_for((40, 23)),
                            EQUIV_CONFIGS["stuck_cells"], 7)
        severity = bank.error_severity()
        size = bank.config.size
        for i, tile_row in enumerate(bank.tiles):
            col = 0
            for tile in tile_row:
                np.testing.assert_array_equal(
                    severity[i * size:i * size + tile.rows,
                             col:col + tile.cols],
                    tile.error_severity())
                col += tile.cols

    def test_sram_matrix_tracks_assignment(self):
        bank = CrossbarBank(weights_for((40, 23)),
                            EQUIV_CONFIGS["stuck_cells"], 7)
        assert not bank.sram_matrix().any()
        moved = bank.assign_sram(0.25)
        assert bank.sram_matrix().sum() == moved

    def test_sync_engine_after_direct_mutation(self):
        bank = CrossbarBank(weights_for((40, 23)),
                            EQUIV_CONFIGS["quiet"], 7)
        bank.effective_matrix()  # force stack build
        tile = bank.tiles[0][0]
        tile.sram_mask[:] = True
        bank.sync_engine()
        assert bank.sram_matrix()[:tile.rows, :tile.cols].all()


# ----------------------------------------------------------------------
# Deployed-model end-to-end equivalence
# ----------------------------------------------------------------------

class TestDeployedEquivalence:
    def test_deployed_model_backend_independent(self, tiny_model):
        from repro.basecaller import BonitoModel
        from repro.core import deploy, get_bundle

        signal = np.random.default_rng(5).standard_normal((1, 192))
        outputs = {}
        for backend in ("loop", "batched"):
            clone = BonitoModel(tiny_model.config)
            clone.load_state_dict(tiny_model.state_dict())
            clone.eval()
            deployed = deploy(clone, get_bundle("combined"),
                              crossbar_size=32, write_variation=0.05,
                              seed=3, backend=backend)
            assert all(b.backend == backend
                       for bs in deployed.banks.values() for b in bs)
            outputs[backend] = clone(signal).data
            deployed.release()
        np.testing.assert_allclose(outputs["batched"], outputs["loop"],
                                   rtol=0.0, atol=1e-8)

    def test_set_backend_on_deployed(self, tiny_model):
        from repro.core import deploy, get_bundle

        deployed = deploy(tiny_model, get_bundle("write_only"),
                          crossbar_size=32, seed=3, backend="loop")
        deployed.set_backend("batched")
        assert all(b.backend == "batched"
                   for bs in deployed.banks.values() for b in bs)
        assert deployed.engines.keys() == deployed.banks.keys()
        deployed.release()
