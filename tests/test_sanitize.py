"""Tests for the runtime concurrency sanitizer (``SWORDFISH_SANITIZE``).

The sanitizer is the runtime half of the SWD009/SWD010 static rules:
the loop watchdog must catch a deliberate event-loop block (with the
offending frame), the mutation guard must catch genuinely concurrent
entry into a guarded mutator, and — the contract everything else hangs
on — sanitized serving must be bitwise-identical to unsanitized
serving with zero reports.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.basecaller import BonitoModel
from repro.observability import (
    ENV_SANITIZE,
    ENV_SANITIZE_BLOCK_MS,
    LoopBlockMonitor,
    MutationGuard,
    guard_deployed,
    sanitize_enabled,
)
from repro.serve import BasecallServer, ServeClient
from repro.serve.cli import DEMO_CONFIG


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------

def test_sanitize_enabled_env(monkeypatch):
    monkeypatch.delenv(ENV_SANITIZE, raising=False)
    assert not sanitize_enabled()
    for value in ("0", "false", "OFF", "no", ""):
        monkeypatch.setenv(ENV_SANITIZE, value)
        assert not sanitize_enabled()
    monkeypatch.setenv(ENV_SANITIZE, "1")
    assert sanitize_enabled()


# ----------------------------------------------------------------------
# LoopBlockMonitor
# ----------------------------------------------------------------------

def test_loop_block_detected_with_frames(tmp_path):
    log = tmp_path / "sanitize.jsonl"
    monitor = LoopBlockMonitor(threshold_s=0.05, log_path=log)

    async def scenario():
        monitor.install(asyncio.get_running_loop())
        await asyncio.sleep(0.2)      # let the first heartbeat land
        time.sleep(0.4)               # the bug the watchdog must catch
        await asyncio.sleep(0.1)
        await asyncio.to_thread(monitor.uninstall)

    asyncio.run(scenario())
    reports = monitor.reports
    assert reports, "a 400ms block must trip a 50ms watchdog"
    event = reports[0]
    assert event["event"] == "loop_block"
    assert event["stall_ms"] >= 50.0
    assert event["threshold_ms"] == pytest.approx(50.0)
    assert any("test_sanitize" in frame for frame in event["frames"]), \
        "the report must name the offending frame"
    lines = [json.loads(line)
             for line in log.read_text(encoding="utf-8").splitlines()]
    assert lines and lines[0]["event"] == "loop_block"


def test_quiet_loop_produces_no_reports():
    monitor = LoopBlockMonitor(threshold_s=0.1)

    async def scenario():
        monitor.install(asyncio.get_running_loop())
        for _ in range(4):
            await asyncio.sleep(0.05)
        await asyncio.to_thread(monitor.uninstall)

    asyncio.run(scenario())
    assert monitor.reports == []


def test_install_is_idempotent():
    monitor = LoopBlockMonitor(threshold_s=0.1)

    async def scenario():
        loop = asyncio.get_running_loop()
        assert monitor.install(loop) is monitor
        assert monitor.install(loop) is monitor
        await asyncio.sleep(0.05)
        await asyncio.to_thread(monitor.uninstall)

    asyncio.run(scenario())
    assert monitor.reports == []


# ----------------------------------------------------------------------
# MutationGuard
# ----------------------------------------------------------------------

def test_mutation_guard_detects_overlap():
    guard = MutationGuard(name="dummy")
    barrier = threading.Barrier(2)

    def hit():
        with guard.guard("mutate"):
            barrier.wait(timeout=5)

    threads = [threading.Thread(target=hit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    violations = guard.violations
    assert violations, "two threads inside the guard must be a violation"
    event = violations[0]
    assert event["event"] == "mutation_overlap"
    assert event["name"] == "dummy"
    assert event["method"] == "mutate"
    assert event["concurrent_with"] == ["mutate"]


def test_mutation_guard_lock_covered_is_clean():
    guard = MutationGuard(name="dummy")
    lock = threading.Lock()

    def hit():
        with lock:
            with guard.guard("mutate"):
                pass

    threads = [threading.Thread(target=hit) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert guard.violations == []


def test_guard_deployed_wraps_rng_restore():
    class FakeDeployed:
        def __init__(self):
            self.calls = 0
            self.barrier = threading.Barrier(2)

        def rng_restore(self, epoch):
            self.calls += 1
            self.barrier.wait(timeout=5)
            return epoch

    deployed = FakeDeployed()
    guard = guard_deployed(deployed, name="fake")
    threads = [threading.Thread(target=deployed.rng_restore, args=(k,))
               for k in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert deployed.calls == 2, "wrapping must not change behavior"
    assert guard.violations
    assert guard.violations[0]["method"] == "rng_restore"


# ----------------------------------------------------------------------
# End to end: sanitized serving is bitwise-identical and report-free
# ----------------------------------------------------------------------

def _serve_roundtrip(signals):
    """Serve ``signals`` on a fresh server; return (bases, report)."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def run(coro, timeout=300):
        return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)

    server = BasecallServer(BonitoModel(DEMO_CONFIG))
    run(server.start())
    try:
        with ServeClient("127.0.0.1", server.port, timeout=120) as client:
            bases = [client.basecall(f"r{index}", signal)["bases"]
                     for index, signal in enumerate(signals)]
    finally:
        run(server.shutdown(drain=True))
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
    return bases, server.sanitizer_report()


def test_sanitized_serve_is_bitwise_identical(monkeypatch):
    rng = np.random.default_rng(42)
    signals = [rng.normal(size=size) for size in (96, 128)]

    monkeypatch.delenv(ENV_SANITIZE, raising=False)
    plain, off_report = _serve_roundtrip(signals)
    assert off_report["enabled"] is False

    monkeypatch.setenv(ENV_SANITIZE, "1")
    # Generous threshold: this asserts "no *blocking calls* on the
    # loop", not scheduler latency on a loaded CI machine.
    monkeypatch.setenv(ENV_SANITIZE_BLOCK_MS, "500")
    sanitized, report = _serve_roundtrip(signals)

    assert sanitized == plain, "sanitizer must be bitwise-neutral"
    assert report["enabled"] is True
    assert report["mutation_overlaps"] == []
    assert report["loop_blocks"] == []
