"""Tests for alignment, edit distance, and the read-accuracy metric."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics import (
    banded_edit_distance,
    edit_distance,
    encode_bases,
    global_align,
    read_accuracy,
)

sequences = st.lists(st.integers(0, 3), min_size=0, max_size=40).map(
    lambda xs: np.array(xs, dtype=np.int8)
)


def reference_edit_distance(a, b):
    """Plain O(nm) Levenshtein for cross-checking."""
    n, m = len(a), len(b)
    dp = np.zeros((n + 1, m + 1), dtype=int)
    dp[:, 0] = np.arange(n + 1)
    dp[0, :] = np.arange(m + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            dp[i, j] = min(dp[i - 1, j] + 1, dp[i, j - 1] + 1,
                           dp[i - 1, j - 1] + (a[i - 1] != b[j - 1]))
    return int(dp[n, m])


class TestGlobalAlign:
    def test_identical(self):
        a = encode_bases("ACGTACGT")
        result = global_align(a, a)
        assert result.matches == 8
        assert result.mismatches == result.insertions == result.deletions == 0
        assert result.identity == 1.0

    def test_single_mismatch(self):
        a = encode_bases("ACGT")
        b = encode_bases("AGGT")
        result = global_align(a, b)
        assert result.matches == 3 and result.mismatches == 1
        assert np.isclose(result.identity, 0.75)

    def test_insertion_and_deletion(self):
        a = encode_bases("ACGGT")   # extra G vs reference
        b = encode_bases("ACGT")
        result = global_align(a, b)
        assert result.insertions == 1
        assert result.matches == 4

        result = global_align(b, a)
        assert result.deletions == 1

    def test_empty_sequences(self):
        a = encode_bases("ACG")
        empty = np.array([], dtype=np.int8)
        result = global_align(a, empty)
        assert result.insertions == 3 and result.alignment_length == 3
        assert global_align(empty, empty).identity == 1.0

    def test_score_consistency(self):
        a = encode_bases("ACGTT")
        b = encode_bases("ACGAT")
        result = global_align(a, b, match=2.0, mismatch=-3.0, gap=-1.0)
        # Gapping around the difference wins: ACG-TT / ACGA-T gives
        # 4 matches and 2 gaps = 4*2 - 2 = 6 (beats a -3 mismatch).
        assert result.score == pytest.approx(6.0)
        assert result.matches == 4

    def test_read_accuracy_wrapper(self):
        a = encode_bases("ACGT")
        assert read_accuracy(a, a) == 1.0


class TestEditDistance:
    def test_known_values(self):
        assert edit_distance(encode_bases("ACGT"), encode_bases("ACGT")) == 0
        assert edit_distance(encode_bases("ACGT"), encode_bases("AGT")) == 1
        assert edit_distance(encode_bases("AAAA"), encode_bases("TTTT")) == 4
        assert edit_distance(np.array([]), encode_bases("ACG")) == 3

    @given(sequences, sequences)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_dp(self, a, b):
        assert edit_distance(a, b) == reference_edit_distance(a, b)

    @given(sequences, sequences)
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_triangle_bounds(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(sequences, sequences)
    @settings(max_examples=40, deadline=None)
    def test_alignment_consistent_with_edits(self, a, b):
        """NW mismatch+indel count upper-bounds the edit distance."""
        result = global_align(a, b)
        edits = result.mismatches + result.insertions + result.deletions
        assert edits >= edit_distance(a, b)


class TestBandedEditDistance:
    @given(sequences, sequences)
    @settings(max_examples=40, deadline=None)
    def test_exact_within_band(self, a, b):
        d = edit_distance(a, b)
        banded = banded_edit_distance(a, b, band=max(d, 1) + 2)
        assert banded == d

    def test_similar_long_sequences(self, rng):
        a = rng.integers(0, 4, size=500).astype(np.int8)
        b = a.copy()
        b[100] = (b[100] + 1) % 4
        b = np.delete(b, 300)
        assert banded_edit_distance(a, b, band=16) == edit_distance(a, b) == 2
