"""Tests for the PUMA-style architecture models (timing/area/energy/GPU)."""

import numpy as np
import pytest

from repro.arch import (
    ArchConfig,
    AreaModel,
    EnergyModel,
    GPUConfig,
    LayerStage,
    ThroughputModel,
    VARIANTS,
    gpu_throughput,
)


def demo_stages():
    return [
        LayerStage("conv0", 80, 32, serial_vmms=1, rate=2.0,
                   row_tiles=2, col_tiles=1),
        LayerStage("lstm0", 48, 192, serial_vmms=2, rate=1.0,
                   row_tiles=1, col_tiles=3),
        LayerStage("decoder", 48, 5, serial_vmms=1, rate=1.0),
    ]


class TestArchConfig:
    def test_vmm_latency_positive_and_scales_with_bits(self):
        a16 = ArchConfig(input_bits=16)
        a8 = ArchConfig(input_bits=8)
        assert a16.tile_vmm_latency_ns() > a8.tile_vmm_latency_ns() > 0

    def test_cells_per_weight(self):
        arch = ArchConfig(weight_bits=16, bits_per_cell=2)
        assert arch.cells_per_weight == 16  # 8 slices × differential pair

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchConfig(crossbar_size=1)
        with pytest.raises(ValueError):
            ArchConfig(adc_share=0)


class TestThroughput:
    def test_ideal_fastest(self):
        model = ThroughputModel(ArchConfig())
        stages = demo_stages()
        results = {name: model.estimate(stages, name, bases_per_frame=0.4)
                   for name in VARIANTS}
        assert results["ideal"].bases_per_second == max(
            r.bases_per_second for r in results.values())
        # Paper ordering: ideal > rsa_kd > rsa > rvw.
        assert (results["rsa_kd"].bases_per_second
                > results["rsa"].bases_per_second
                > results["rvw"].bases_per_second)

    def test_bottleneck_is_slowest_stage(self):
        model = ThroughputModel(ArchConfig())
        estimate = model.estimate(demo_stages(), "ideal", 0.4)
        assert estimate.bottleneck_stage in {"conv0", "lstm0", "decoder"}
        # The serial LSTM at rate 1 vs conv at rate 2: check consistency.
        latencies = {
            s.name: model.stage_latency_ns(s, VARIANTS["ideal"])
            for s in demo_stages()
        }
        assert estimate.bottleneck_stage == max(latencies, key=latencies.get)

    def test_replicas_scale_throughput(self):
        small = ArchConfig(total_tiles=64)
        large = ArchConfig(total_tiles=4096)
        stages = demo_stages()
        t_small = ThroughputModel(small).estimate(stages, "ideal", 0.4)
        t_large = ThroughputModel(large).estimate(stages, "ideal", 0.4)
        assert t_large.replicas > t_small.replicas
        assert t_large.bases_per_second > t_small.bases_per_second

    def test_input_validation(self):
        model = ThroughputModel(ArchConfig())
        with pytest.raises(ValueError):
            model.estimate([], "ideal", 0.4)
        with pytest.raises(ValueError):
            model.estimate(demo_stages(), "ideal", 0.0)


class TestArea:
    def test_sram_grows_with_fraction(self):
        model = AreaModel(ArchConfig())
        stages = demo_stages()
        areas = [model.replica_area(stages, sram_fraction=f).total_mm2
                 for f in (0.0, 0.01, 0.05, 0.10)]
        assert areas == sorted(areas)
        assert model.replica_area(stages, 0.0).rsa_overhead_mm2 == 0.0

    def test_replicas_scale_area(self):
        model = AreaModel(ArchConfig())
        one = model.replica_area(demo_stages(), replicas=1).total_mm2
        four = model.replica_area(demo_stages(), replicas=4).total_mm2
        assert np.isclose(four, 4 * one)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            AreaModel(ArchConfig()).replica_area(demo_stages(),
                                                 sram_fraction=1.5)

    def test_breakdown_positive(self):
        area = AreaModel(ArchConfig()).replica_area(demo_stages(), 0.05)
        assert area.crossbars > 0 and area.converters > 0
        assert area.sram > 0 and area.metadata > 0


class TestEnergy:
    def test_variant_ordering(self):
        model = EnergyModel(ArchConfig())
        stages = demo_stages()
        per_base = {name: model.per_base(stages, name, 0.4).total_pj
                    for name in VARIANTS}
        assert per_base["ideal"] < per_base["rsa_kd"] < per_base["rsa"]
        assert per_base["rvw"] > per_base["ideal"]

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(ArchConfig()).per_base(demo_stages(), "ideal", 0.0)


class TestGPUBaseline:
    def test_lstm_heavy_network_slower(self):
        balanced = gpu_throughput(1e6, 1e6)
        lstm_heavy = gpu_throughput(0.0, 2e6)
        assert lstm_heavy < balanced

    def test_throughput_scales_inverse_with_work(self):
        assert gpu_throughput(1e6, 1e6) > gpu_throughput(2e6, 2e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            gpu_throughput(-1.0, 1.0)
        with pytest.raises(ValueError):
            gpu_throughput(0.0, 0.0)
        with pytest.raises(ValueError):
            GPUConfig(lstm_efficiency=0.0)
