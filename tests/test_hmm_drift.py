"""Tests for the HMM baseline basecaller and retention drift."""

import numpy as np
import pytest

from repro.basecaller import HMMBasecaller
from repro.crossbar import (
    CrossbarBank,
    DeviceConfig,
    DriftConfig,
    RefreshPolicy,
    apply_retention_drift,
)
from repro.genomics import (
    SquiggleConfig,
    dataset_reads,
    normalize_signal,
    random_genome,
    sample_reads,
)


class TestHMMBasecaller:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HMMBasecaller(p_stay=1.5)

    def test_viterbi_path_shape(self):
        hmm = HMMBasecaller()
        signal = np.random.default_rng(0).standard_normal(100)
        path = hmm.viterbi(signal)
        assert path.shape == (100,)
        assert path.min() >= 0 and path.max() < hmm.num_states

    def test_viterbi_rejects_bad_input(self):
        hmm = HMMBasecaller()
        with pytest.raises(ValueError):
            hmm.viterbi(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            hmm.viterbi(np.array([]))

    def test_extreme_noise_degrades(self, rng):
        """Heavy signal noise must hurt HMM accuracy."""
        genome = random_genome(3000, seed=42)
        moderate = SquiggleConfig()                      # defaults
        extreme = SquiggleConfig(noise_scale=3.5, drift_sigma=4.0)
        hmm = HMMBasecaller(table_noise=0.0)
        moderate_acc = hmm.evaluate(sample_reads(genome, 4, rng,
                                                 mean_length=160,
                                                 squiggle=moderate))
        extreme_acc = hmm.evaluate(sample_reads(genome, 4, rng,
                                                mean_length=160,
                                                squiggle=extreme))
        assert moderate_acc > extreme_acc
        assert moderate_acc > 75.0

    def test_table_noise_degrades(self):
        reads = dataset_reads("D1", num_reads=3, seed_offset=1)
        oracle = HMMBasecaller(table_noise=0.0).evaluate(reads)
        noisy = HMMBasecaller(table_noise=0.10).evaluate(reads)
        assert oracle > noisy

    def test_realistic_reads_reasonable(self):
        reads = dataset_reads("D1", num_reads=3, seed_offset=1)
        accuracy = HMMBasecaller().evaluate(reads)
        assert 55.0 < accuracy < 100.0

    def test_output_base_codes(self):
        reads = dataset_reads("D1", num_reads=1)
        called = HMMBasecaller().basecall_read(reads[0])
        assert called.dtype == np.int8
        assert called.min() >= 0 and called.max() <= 3

    def test_empty_evaluation_rejected(self):
        with pytest.raises(ValueError):
            HMMBasecaller().evaluate([])


class TestRetentionDrift:
    def test_no_drift_before_t0(self):
        device = DeviceConfig()
        g = np.full(10, device.g_max)
        out = apply_retention_drift(g, 0.5, DriftConfig(t0_s=1.0), device)
        assert np.array_equal(out, g)

    def test_drift_pulls_toward_midpoint(self):
        device = DeviceConfig()
        config = DriftConfig(relaxation_per_decade=0.1, diffusion=0.0)
        mid = 0.5 * (device.g_min + device.g_max)
        high = np.full(5, device.g_max)
        low = np.full(5, device.g_min)
        aged_high = apply_retention_drift(high, 1e4, config, device)
        aged_low = apply_retention_drift(low, 1e4, config, device)
        assert np.all(aged_high < device.g_max)
        assert np.all(aged_low > device.g_min)
        assert np.all(aged_high > mid) and np.all(aged_low < mid)

    def test_drift_monotone_in_time(self):
        device = DeviceConfig()
        config = DriftConfig(relaxation_per_decade=0.1, diffusion=0.0)
        g = np.full(5, device.g_max)
        drifts = [device.g_max - apply_retention_drift(g, t, config,
                                                       device)[0]
                  for t in (1e1, 1e3, 1e5)]
        assert drifts == sorted(drifts)

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(relaxation_per_decade=1.5)
        with pytest.raises(ValueError):
            DriftConfig(t0_s=0.0)

    def test_bank_age_increases_error(self, rng):
        weights = rng.standard_normal((32, 32)) * 0.2
        from tests.test_crossbar import clean_config
        bank = CrossbarBank(weights, clean_config(size=32), rng)
        x = rng.standard_normal((4, 32))
        before = np.abs(bank.vmm(x) - x @ weights).mean()
        bank.age(1e6, DriftConfig(relaxation_per_decade=0.15))
        after = np.abs(bank.vmm(x) - x @ weights).mean()
        assert after > before


class TestRefreshPolicy:
    def test_amortized_rates(self):
        policy = RefreshPolicy(interval_s=100.0, pulses_per_cell=2.0)
        assert policy.amortized_pulse_rate(1000) == pytest.approx(20.0)
        assert policy.worst_case_age_s() == 100.0

    def test_duty_overhead_bounded(self):
        policy = RefreshPolicy(interval_s=1e-6, pulses_per_cell=10.0)
        assert policy.duty_overhead(10 ** 6, pulse_ns=1000.0) == 1.0
        light = RefreshPolicy(interval_s=3600.0)
        assert light.duty_overhead(4096, pulse_ns=1000.0) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            RefreshPolicy(interval_s=0.0)
        with pytest.raises(ValueError):
            RefreshPolicy(pulses_per_cell=0.0)
