"""Tests for ``repro.reliability`` and training checkpoint/resume.

The two load-bearing properties here are *bitwise* ones: a training run
killed at an epoch boundary or mid-epoch and resumed from its
checkpoint must finish byte-for-byte identical to an uninterrupted run
(same weights, same loss history), including under a VAT perturb hook
with its own RNG stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.basecaller import BonitoModel, TrainConfig, train_model
from repro.core.enhance import _make_perturb, _stage_checkpoint
from repro.reliability import (
    DivergenceError,
    HealthMonitor,
    HealthPolicy,
    JournalError,
    RunJournal,
    default_monitor,
    plan_fingerprint,
)
from tests.conftest import TINY_CONFIG

FAST_TRAIN = TrainConfig(epochs=3, batch_size=16, lr=8e-3, warmup_steps=4)


def _states_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ----------------------------------------------------------------------
# Optimizer / schedule state dicts
# ----------------------------------------------------------------------
def _toy_params(seed: int = 3) -> list[nn.Parameter]:
    rng = np.random.default_rng(seed)
    return [nn.Parameter(rng.normal(size=(4, 3))),
            nn.Parameter(rng.normal(size=(3,)))]


def _descend(optimizer, params, steps: int) -> None:
    """Deterministic gradient stream: grad = 2 * current weights."""
    for _ in range(steps):
        for p in params:
            p.grad = 2.0 * p.data
        optimizer.step()


@pytest.mark.parametrize("factory", [
    lambda ps: nn.Adam(ps, lr=1e-2),
    lambda ps: nn.SGD(ps, lr=1e-2, momentum=0.9),
])
def test_optimizer_restore_continues_bitwise(factory):
    ref_params = _toy_params()
    ref_opt = factory(ref_params)
    _descend(ref_opt, ref_params, 10)

    # Same trajectory, but snapshotted after 4 steps and resumed into
    # a *fresh* optimizer over fresh parameter objects.
    half_params = _toy_params()
    half_opt = factory(half_params)
    _descend(half_opt, half_params, 4)
    snapshot = half_opt.state_dict()
    weights = [p.data.copy() for p in half_params]

    resumed_params = _toy_params()
    for p, w in zip(resumed_params, weights):
        p.data = w.copy()
    resumed_opt = factory(resumed_params)
    resumed_opt.load_state_dict(snapshot)
    _descend(resumed_opt, resumed_params, 6)

    for ref, res in zip(ref_params, resumed_params):
        assert np.array_equal(ref.data, res.data)


def test_optimizer_state_validation():
    params = _toy_params()
    opt = nn.Adam(params, lr=1e-2)
    good = opt.state_dict()
    with pytest.raises(ValueError, match="buffers"):
        opt.load_state_dict({**good, "m": good["m"][:1]})
    with pytest.raises(ValueError, match="shape mismatch"):
        opt.load_state_dict({**good, "v": [np.zeros((2, 2)),
                                           good["v"][1]]})


def test_schedule_restore_continues_bitwise():
    def build():
        params = _toy_params()
        opt = nn.Adam(params, lr=6e-3)
        return opt, nn.LinearWarmup(
            opt, 5, after=nn.CosineSchedule(opt, 20, lr_min=3e-4))

    ref_opt, ref_sched = build()
    reference = [ref_sched.step() for _ in range(15)]

    half_opt, half_sched = build()
    for _ in range(7):
        half_sched.step()
    opt_state, sched_state = half_opt.state_dict(), half_sched.state_dict()
    assert sched_state["after"]["step_count"] == 2

    res_opt, res_sched = build()
    res_opt.load_state_dict(opt_state)
    res_sched.load_state_dict(sched_state)
    resumed = [res_sched.step() for _ in range(8)]
    assert resumed == reference[7:]


# ----------------------------------------------------------------------
# Full training-state checkpoints
# ----------------------------------------------------------------------
class TestTrainingState:
    def _build(self):
        model = BonitoModel(TINY_CONFIG)
        optimizer = nn.Adam(model.parameters(), lr=5e-3)
        schedule = nn.CosineSchedule(optimizer, 40)
        rng = np.random.default_rng(77)
        return model, optimizer, schedule, rng

    def test_round_trip(self, tmp_path):
        model, optimizer, schedule, rng = self._build()
        rng.normal(size=8)           # advance the stream
        schedule.step()
        path = tmp_path / "run.ckpt"
        nn.save_training_state(path, model=model, optimizer=optimizer,
                               schedule=schedule, rng=rng, epoch=4,
                               extra={"epoch_losses": [1.0, 0.5]})
        assert not list(tmp_path.glob("*.tmp.*"))  # atomic, no debris

        other_model, other_opt, other_sched, other_rng = self._build()
        state = nn.load_training_state(path, model=other_model,
                                       optimizer=other_opt,
                                       schedule=other_sched, rng=other_rng)
        assert state["epoch"] == 4
        assert state["extra"]["epoch_losses"] == [1.0, 0.5]
        assert _states_equal(other_model.state_dict(), model.state_dict())
        assert other_sched.step_count == schedule.step_count
        # Both generators now continue on the identical stream.
        assert np.array_equal(other_rng.normal(size=4), rng.normal(size=4))

    def test_missing_and_corrupt_raise(self, tmp_path):
        model, optimizer, schedule, rng = self._build()
        path = tmp_path / "run.ckpt"
        with pytest.raises(nn.CheckpointError, match="no checkpoint"):
            nn.load_training_state(path)
        nn.save_training_state(path, model=model, epoch=0)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(nn.CheckpointError):
            nn.load_training_state(path)

    def test_foreign_pickle_raises(self, tmp_path):
        path = tmp_path / "run.ckpt"
        import pickle
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(nn.CheckpointError,
                           match="not a training-state checkpoint"):
            nn.load_training_state(path)


# ----------------------------------------------------------------------
# Health guards
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_nan_loss_is_structured(self):
        monitor = HealthMonitor()
        monitor.check_loss(1.0, step=0)
        with pytest.raises(DivergenceError) as excinfo:
            monitor.check_loss(float("nan"), step=1)
        err = excinfo.value
        assert err.metric == "loss" and err.step == 1
        assert err.to_dict()["history"] == [1.0]

    def test_loss_explosion_only_after_warmup(self):
        monitor = HealthMonitor(HealthPolicy(loss_explosion_ratio=10.0,
                                             warmup_steps=3))
        monitor.check_loss(100.0)    # before warmup: anything finite is ok
        for value in (2.0, 1.5, 1.2):
            monitor.check_loss(value)
        with pytest.raises(DivergenceError, match="exploded"):
            monitor.check_loss(50.0)  # > 10 * max(|1.2|, 1)

    def test_grad_norm_limits(self):
        monitor = HealthMonitor(HealthPolicy(grad_norm_limit=100.0))
        assert monitor.check_grad_norm(99.0) == 99.0
        with pytest.raises(DivergenceError, match="grad_norm"):
            monitor.check_grad_norm(101.0)
        with pytest.raises(DivergenceError):
            monitor.check_grad_norm(float("inf"))

    def test_check_array(self):
        monitor = HealthMonitor(HealthPolicy(output_limit=1e3))
        clean = np.ones((4, 4))
        assert monitor.check_array("vmm", clean) is not None
        monitor.check_array("vmm", np.empty((0,)))  # empty is fine
        with pytest.raises(DivergenceError, match="non-finite"):
            monitor.check_array("vmm", np.array([1.0, np.nan]))
        with pytest.raises(DivergenceError, match="magnitude"):
            monitor.check_array("vmm", np.array([2e3]))

    def test_rollback_budget(self):
        monitor = HealthMonitor(HealthPolicy(on_divergence="rollback",
                                             max_rollbacks=2))
        assert monitor.can_roll_back
        assert monitor.note_rollback() == 1
        assert monitor.note_rollback() == 2
        assert not monitor.can_roll_back
        assert not HealthMonitor().can_roll_back  # "fail" never rolls back

    def test_policy_validation_and_env(self, monkeypatch):
        with pytest.raises(ValueError, match="on_divergence"):
            HealthPolicy(on_divergence="shrug")
        monkeypatch.setenv("SWORDFISH_HEALTH_POLICY", "rollback")
        monkeypatch.setenv("SWORDFISH_HEALTH_GRAD_LIMIT", "123.5")
        policy = HealthPolicy.from_env()
        assert policy.on_divergence == "rollback"
        assert policy.grad_norm_limit == 123.5

    def test_default_monitor_kill_switch(self, monkeypatch):
        monkeypatch.delenv("SWORDFISH_HEALTH", raising=False)
        assert default_monitor() is not None
        monkeypatch.setenv("SWORDFISH_HEALTH", "off")
        assert default_monitor() is None

    def test_vmm_output_guard_fires_during_deployed_eval(self, tiny_model,
                                                         rng):
        from repro.core import deploy, get_bundle

        deployed = deploy(tiny_model, get_bundle("ideal"), seed=0)
        deployed.health = HealthMonitor(HealthPolicy(output_limit=1e-30))
        try:
            with pytest.raises(DivergenceError, match="vmm:"):
                with nn.no_grad():
                    tiny_model(nn.Tensor(rng.standard_normal((1, 192))))
        finally:
            deployed.release()


# ----------------------------------------------------------------------
# train_model: checkpoint/resume, rollback, empty epochs
# ----------------------------------------------------------------------
class _KillAt:
    """Progress hook that raises once the given epoch completes."""

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.armed = True

    def __call__(self, epoch: int, loss: float) -> None:
        if self.armed and epoch == self.epoch:
            self.armed = False
            raise KeyboardInterrupt(f"killed after epoch {epoch}")


class _MidEpochBomb:
    """Loss fn that dies on one specific batch of its first life."""

    def __init__(self, at_call: int):
        self.calls = 0
        self.at_call = at_call
        self.armed = True

    def __call__(self, model, signals, targets):
        self.calls += 1
        if self.armed and self.calls == self.at_call:
            self.armed = False
            raise KeyboardInterrupt(f"killed at batch {self.calls}")
        return nn.ctc_loss(model(signals), targets)


class _NanBomb:
    """Loss fn that goes NaN on one specific batch of its first life."""

    def __init__(self, at_call: int):
        self.calls = 0
        self.at_call = at_call
        self.armed = True

    def __call__(self, model, signals, targets):
        loss = nn.ctc_loss(model(signals), targets)
        self.calls += 1
        if self.armed and self.calls == self.at_call:
            self.armed = False
            loss.data = loss.data * np.nan
        return loss


class TestTrainResume:
    def test_resume_after_boundary_kill_is_bitwise(self, tiny_chunks,
                                                   tmp_path):
        reference = BonitoModel(TINY_CONFIG)
        ref_losses = train_model(reference, tiny_chunks, FAST_TRAIN)

        model = BonitoModel(TINY_CONFIG)
        ckpt = tmp_path / "train.ckpt"
        with pytest.raises(KeyboardInterrupt):
            train_model(model, tiny_chunks, FAST_TRAIN,
                        checkpoint_path=ckpt, progress=_KillAt(1))
        assert ckpt.exists()

        losses = train_model(model, tiny_chunks, FAST_TRAIN,
                             checkpoint_path=ckpt)
        assert losses == ref_losses
        assert _states_equal(model.state_dict(), reference.state_dict())

    def test_resume_after_mid_epoch_kill_is_bitwise(self, tiny_chunks,
                                                    tmp_path):
        reference = BonitoModel(TINY_CONFIG)
        ref_losses = train_model(reference, tiny_chunks, FAST_TRAIN,
                                 loss_fn=_MidEpochBomb(at_call=10 ** 9))

        model = BonitoModel(TINY_CONFIG)
        ckpt = tmp_path / "train.ckpt"
        # 4 steps/epoch: batch 6 is mid-epoch-1, after epoch 0's
        # checkpoint hit the disk.
        bomb = _MidEpochBomb(at_call=6)
        with pytest.raises(KeyboardInterrupt):
            train_model(model, tiny_chunks, FAST_TRAIN,
                        checkpoint_path=ckpt, loss_fn=bomb)

        losses = train_model(model, tiny_chunks, FAST_TRAIN,
                             checkpoint_path=ckpt, loss_fn=bomb)
        assert losses == ref_losses
        assert _states_equal(model.state_dict(), reference.state_dict())

    def test_vat_perturb_resumes_on_same_noise_stream(self, tiny_chunks,
                                                      tmp_path):
        def noise_for(model):
            return {id(p): np.full(p.data.shape, 0.01)
                    for p in model.parameters()}

        reference = BonitoModel(TINY_CONFIG)
        ref_losses = train_model(reference, tiny_chunks, FAST_TRAIN,
                                 weight_perturb=_make_perturb(
                                     noise_for(reference), seed=5))

        model = BonitoModel(TINY_CONFIG)
        ckpt = tmp_path / "vat.ckpt"
        with pytest.raises(KeyboardInterrupt):
            train_model(model, tiny_chunks, FAST_TRAIN,
                        weight_perturb=_make_perturb(noise_for(model),
                                                     seed=5),
                        checkpoint_path=ckpt, progress=_KillAt(0))

        # The fresh hook starts on the wrong RNG state; the checkpoint
        # must bring it back onto the reference stream.
        losses = train_model(model, tiny_chunks, FAST_TRAIN,
                             weight_perturb=_make_perturb(noise_for(model),
                                                          seed=5),
                             checkpoint_path=ckpt)
        assert losses == ref_losses
        assert _states_equal(model.state_dict(), reference.state_dict())

    def test_nan_divergence_fails_fast_by_default(self, tiny_chunks):
        model = BonitoModel(TINY_CONFIG)
        with pytest.raises(DivergenceError, match="loss"):
            train_model(model, tiny_chunks, FAST_TRAIN,
                        loss_fn=_NanBomb(at_call=3),
                        health=HealthMonitor())

    def test_nan_divergence_rolls_back_and_completes(self, tiny_chunks):
        model = BonitoModel(TINY_CONFIG)
        monitor = HealthMonitor(HealthPolicy(on_divergence="rollback",
                                             max_rollbacks=2))
        losses = train_model(model, tiny_chunks, FAST_TRAIN,
                             loss_fn=_NanBomb(at_call=6), health=monitor)
        assert monitor.rollbacks == 1
        assert len(losses) == FAST_TRAIN.epochs
        assert all(np.isfinite(losses))

    def test_rollback_budget_exhaustion_raises(self, tiny_chunks):
        class AlwaysNan:
            def __call__(self, model, signals, targets):
                loss = nn.ctc_loss(model(signals), targets)
                loss.data = loss.data * np.nan
                return loss

        model = BonitoModel(TINY_CONFIG)
        monitor = HealthMonitor(HealthPolicy(on_divergence="rollback",
                                             max_rollbacks=1))
        with pytest.raises(DivergenceError):
            train_model(model, tiny_chunks, FAST_TRAIN,
                        loss_fn=AlwaysNan(), health=monitor)
        assert monitor.rollbacks == 1

    def test_too_few_chunks_is_a_clear_error(self, tiny_chunks):
        model = BonitoModel(TINY_CONFIG)
        with pytest.raises(ValueError, match="no training chunks"):
            train_model(model, [], FAST_TRAIN)
        with pytest.raises(ValueError, match="every epoch would be empty"):
            train_model(model, tiny_chunks[:7], FAST_TRAIN)

    def test_checkpoint_cadence_env(self, tiny_chunks, tmp_path,
                                    monkeypatch):
        monkeypatch.setenv("SWORDFISH_CHECKPOINT_EVERY", "0")
        model = BonitoModel(TINY_CONFIG)
        ckpt = tmp_path / "never.ckpt"
        train_model(model, tiny_chunks,
                    TrainConfig(epochs=1, batch_size=16, lr=8e-3),
                    checkpoint_path=ckpt)
        assert not ckpt.exists()

    def test_stage_checkpoint_paths_are_env_gated(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.delenv("SWORDFISH_CHECKPOINT_DIR", raising=False)
        assert _stage_checkpoint("vat", "abc123") is None
        monkeypatch.setenv("SWORDFISH_CHECKPOINT_DIR", str(tmp_path))
        assert _stage_checkpoint("vat", "abc123") == \
            tmp_path / "vat_abc123.ckpt"


# ----------------------------------------------------------------------
# Run journal
# ----------------------------------------------------------------------
class TestRunJournal:
    KEYS = [f"{i:02x}" + "0" * 62 for i in range(4)]

    def _write_session(self, path, statuses):
        journal = RunJournal(path)
        journal.begin("plan-a", self.KEYS)
        for index, status in enumerate(statuses):
            journal.record(index=index, key=self.KEYS[index],
                           tag=f"job/{index}", status=status)
        journal.close()
        return journal

    def test_resume_reports_completed_keys(self, tmp_path):
        path = tmp_path / "run.journal"
        self._write_session(path, ["ok", "failed", "ok"])
        journal = RunJournal(path, resume=True)
        done = journal.begin("plan-a", self.KEYS)
        assert done == {self.KEYS[0], self.KEYS[2]}
        journal.close()

    def test_fresh_run_truncates(self, tmp_path):
        path = tmp_path / "run.journal"
        self._write_session(path, ["ok", "ok", "ok", "ok"])
        journal = RunJournal(path, resume=False)
        assert journal.begin("plan-a", self.KEYS) == set()
        journal.close()
        header, records = RunJournal(path).load()
        assert header["resumed"] == 0 and records == []

    def test_resume_refuses_different_plan(self, tmp_path):
        path = tmp_path / "run.journal"
        self._write_session(path, ["ok"])
        journal = RunJournal(path, resume=True)
        with pytest.raises(JournalError, match="refusing to resume"):
            journal.begin("plan-b", list(reversed(self.KEYS)))

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "run.journal"
        self._write_session(path, ["ok", "ok"])
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "job", "key": "tr')  # writer died here
        journal = RunJournal(path, resume=True)
        done = journal.begin("plan-a", self.KEYS)
        assert done == {self.KEYS[0], self.KEYS[1]}
        journal.close()

    def test_fingerprint_is_order_sensitive(self):
        assert plan_fingerprint(self.KEYS) != \
            plan_fingerprint(list(reversed(self.KEYS)))

    def test_torn_tail_mid_queue_event_still_resumes(self, tmp_path):
        """The broker dying mid-append of a *queue* event must not cost
        any recorded progress."""
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        journal.begin("plan-a", self.KEYS)
        journal.record(index=0, key=self.KEYS[0], tag="job/0", status="ok")
        journal.record_event("lease", index=1, key=self.KEYS[1],
                             worker="w1", attempt=1, token="1.1.9")
        journal.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "requeue", "index": 1, "rea')  # SIGKILL
        reopened = RunJournal(path, resume=True)
        done = reopened.begin("plan-a", self.KEYS)
        assert done == {self.KEYS[0]}
        reopened.close()
        # load() after the new session header sees only that session.
        header, _ = RunJournal(path).load()
        assert header["resumed"] == 1

    def test_load_returns_queue_events_in_order(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        journal.begin("plan-a", self.KEYS)
        journal.record_event("lease", index=0, attempt=1)
        journal.record_event("requeue", index=0, reason="disconnect",
                             attempt=1, deaths=1)
        journal.record(index=0, key=self.KEYS[0], tag="job/0",
                       status="failed", error_type="WorkerDeath")
        journal.close()
        _, records = RunJournal(path).load()
        assert [r["event"] for r in records] == ["lease", "requeue", "job"]

    def test_mixed_version_records_tolerated(self, tmp_path):
        """Unknown event kinds, missing optional fields, and non-object
        JSON lines from another producer version are all skipped or
        passed through — never fatal."""
        path = tmp_path / "run.journal"
        self._write_session(path, ["ok"])
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"event": "gpu_migration", "index": 2}\n')  # future
            fh.write('{"event": "job", "key": "%s", "status": "ok"}\n'
                     % self.KEYS[1])  # no attempts/cache fields
            fh.write('[1, 2, 3]\n')                   # non-object line
            fh.write('"just a string"\n')
            fh.write('{"no_event_field": true}\n')
        journal = RunJournal(path, resume=True)
        done = journal.begin("plan-a", self.KEYS)
        assert done == {self.KEYS[0], self.KEYS[1]}
        journal.close()
        _, records = RunJournal(path).load()
        kinds = {r["event"] for r in records}
        assert "gpu_migration" not in kinds  # new session, old one gone

    def test_ok_for_foreign_key_not_trusted(self, tmp_path):
        """A journal 'ok' whose key is not in this plan never resumes."""
        path = tmp_path / "run.journal"
        journal = RunJournal(path)
        journal.begin("plan-a", self.KEYS)
        journal.record(index=0, key="f" * 64, tag="alien", status="ok")
        journal.close()
        reopened = RunJournal(path, resume=True)
        assert reopened.begin("plan-a", self.KEYS) == set()
        reopened.close()

    def test_record_event_reserves_structural_kinds(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal")
        journal.begin("plan-a", self.KEYS)
        with pytest.raises(ValueError, match="reserved"):
            journal.record_event("plan", plan="sneaky")
        with pytest.raises(ValueError, match="reserved"):
            journal.record_event("job", index=0)
        journal.close()
