"""Tests for the Swordfish core: partition, bundles, deployment, results."""

import numpy as np
import pytest

from repro import nn
from repro.basecaller import BonitoConfig, BonitoModel, evaluate_accuracy
from repro.core import (
    BUNDLES,
    DeployedModel,
    NonidealityBundle,
    NonidealityCalibration,
    deploy,
    get_bundle,
    partition_network,
    render_table,
)
from repro.core.results import AccuracyResult, ExperimentRecord, save_record
from repro.genomics import dataset_reads


class TestPartition:
    def test_layer_inventory(self):
        model = BonitoModel(BonitoConfig())
        mapping = partition_network(model, 64)
        names = [layer.name for layer in mapping.layers]
        assert names == ["conv0", "conv1", "lstm0", "lstm1", "skip",
                         "decoder"]
        assert mapping.total_weights == sum(
            layer.num_weights for layer in mapping.layers)

    def test_tile_grids_cover_weights(self):
        model = BonitoModel(BonitoConfig())
        mapping = partition_network(model, 64)
        for layer in mapping.layers:
            for shape, grid in zip(layer.weight_shapes, layer.tile_grids):
                assert grid[0] * 64 >= shape[0]
                assert grid[1] * 64 >= shape[1]
                assert (grid[0] - 1) * 64 < shape[0]

    def test_smaller_tiles_more_tiles(self):
        model = BonitoModel(BonitoConfig())
        small = partition_network(model, 64).total_tiles
        large = partition_network(model, 256).total_tiles
        assert small > large

    def test_lstm_serialization_and_conv_rate(self):
        model = BonitoModel(BonitoConfig())
        mapping = partition_network(model, 64)
        by_name = {layer.name: layer for layer in mapping.layers}
        assert by_name["lstm0"].serial_vmms == 1  # only the recurrent VMM
        assert by_name["decoder"].serial_vmms == 1
        # conv0 runs ahead of the stride-2 downsample.
        assert by_name["conv0"].rate == 2.0
        assert by_name["conv1"].rate == 2.0  # rate counted before stride
        assert by_name["lstm0"].rate == 1.0

    def test_bases_per_frame(self):
        model = BonitoModel(BonitoConfig())
        mapping = partition_network(model, 64, samples_per_base=5.0)
        assert np.isclose(mapping.bases_per_frame, 2 / 5)

    def test_stages_roundtrip(self):
        model = BonitoModel(BonitoConfig())
        stages = partition_network(model, 64).stages()
        assert len(stages) == 6
        assert all(s.rows > 0 and s.cols > 0 for s in stages)

    def test_size_validation(self):
        model = BonitoModel(BonitoConfig())
        with pytest.raises(ValueError):
            partition_network(model, 1)


class TestBundles:
    def test_registry_complete(self):
        assert set(BUNDLES) == {"ideal", "write_only", "synaptic_wires",
                                "sense_adc", "dac_driver", "combined",
                                "measured"}
        with pytest.raises(KeyError):
            get_bundle("nope")

    def test_ideal_bundle_is_ideal(self):
        config = get_bundle("ideal").crossbar_config(64, write_variation=0.5)
        assert config.variation.write_variation == 0.0
        assert config.dac.bits is None and config.adc.bits is None
        assert config.wire.segment_ohm == 0.0

    def test_write_only_isolates_write_variation(self):
        config = get_bundle("write_only").crossbar_config(64, 0.25)
        assert config.variation.write_variation == 0.25
        assert config.variation.device_variation == 0.0
        assert config.device.nonlinearity == 0.0
        assert config.dac.bits is None

    def test_bundle_activates_right_groups(self):
        adc = get_bundle("sense_adc").crossbar_config(64)
        assert adc.adc.bits is not None and adc.dac.bits is None
        dac = get_bundle("dac_driver").crossbar_config(64)
        assert dac.dac.bits is not None and dac.adc.bits is None
        combined = get_bundle("combined").crossbar_config(64)
        assert combined.adc.bits is not None
        assert combined.dac.bits is not None
        assert combined.device.nonlinearity > 0

    def test_adc_errors_grow_with_size(self):
        small = get_bundle("sense_adc").crossbar_config(64)
        large = get_bundle("sense_adc").crossbar_config(256)
        assert large.adc.gain_std > small.adc.gain_std

    def test_measured_is_harsher(self):
        combined = get_bundle("combined").crossbar_config(64)
        measured = get_bundle("measured").crossbar_config(64)
        assert (measured.device.nonlinearity
                > combined.device.nonlinearity)

    def test_custom_calibration(self):
        cal = NonidealityCalibration(device_variation=0.5)
        bundle = get_bundle("synaptic_wires").with_calibration(cal)
        config = bundle.crossbar_config(64)
        assert config.variation.device_variation == 0.5


class TestDeployedModel:
    def test_ideal_deployment_preserves_output(self, tiny_model, rng):
        signal = rng.standard_normal(200)
        with nn.no_grad():
            exact = tiny_model(nn.Tensor(signal[None, :])).data
        deployed = deploy(tiny_model, get_bundle("ideal"),
                          write_variation=0.0)
        with nn.no_grad():
            routed = tiny_model(nn.Tensor(signal[None, :])).data
        deployed.release()
        assert np.abs(exact - routed).max() < 0.05

    def test_noise_changes_output(self, tiny_model, rng):
        signal = rng.standard_normal(200)
        with nn.no_grad():
            exact = tiny_model(nn.Tensor(signal[None, :])).data
        deployed = deploy(tiny_model, get_bundle("write_only"),
                          write_variation=0.3)
        with nn.no_grad():
            noisy = tiny_model(nn.Tensor(signal[None, :])).data
        deployed.release()
        assert np.abs(exact - noisy).max() > 0.01

    def test_release_restores_exact(self, tiny_model, rng):
        signal = rng.standard_normal(200)
        with nn.no_grad():
            before = tiny_model(nn.Tensor(signal[None, :])).data
        deploy(tiny_model, get_bundle("write_only"),
               write_variation=0.3).release()
        with nn.no_grad():
            after = tiny_model(nn.Tensor(signal[None, :])).data
        assert np.allclose(before, after)

    def test_banks_per_layer(self, tiny_model):
        deployed = deploy(tiny_model, get_bundle("write_only"))
        try:
            assert set(deployed.banks) == {
                name for name, _ in tiny_model.vmm_layers()}
            for name, layer in tiny_model.vmm_layers():
                expected = 2 if hasattr(layer, "weight_hh") else 1
                assert len(deployed.banks[name]) == expected
        finally:
            deployed.release()

    def test_assign_sram_reduces_weight_error(self, tiny_model):
        deployed = deploy(tiny_model, get_bundle("write_only"),
                          write_variation=0.4, seed=3)
        try:
            ideal = {name: [w.copy() for w in
                            DeployedModel._layer_weights(layer)]
                     for name, layer in tiny_model.vmm_layers()}

            def total_error():
                effective = deployed.effective_weights()
                return sum(
                    float(np.abs(eff - ref).sum())
                    for name in effective
                    for eff, ref in zip(effective[name], ideal[name])
                )

            before = total_error()
            moved = deployed.assign_sram(0.5, use_knowledge=True)
            assert moved > 0
            after = total_error()
            assert after < before * 0.6  # worst half remapped to SRAM
        finally:
            deployed.release()

    def test_seed_reproducibility(self, tiny_model, rng):
        signal = rng.standard_normal(200)
        outs = []
        for _ in range(2):
            deployed = deploy(tiny_model, get_bundle("write_only"),
                              write_variation=0.2, seed=42)
            with nn.no_grad():
                outs.append(tiny_model(nn.Tensor(signal[None, :])).data)
            deployed.release()
        assert np.allclose(outs[0], outs[1])

    def test_effective_weights_shapes(self, tiny_model):
        deployed = deploy(tiny_model, get_bundle("write_only"))
        try:
            effective = deployed.effective_weights()
            for name, layer in tiny_model.vmm_layers():
                for w, shape in zip(effective[name], layer.vmm_shapes()):
                    assert w.shape == shape
        finally:
            deployed.release()


class TestResults:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1.5, "x"], [2.25, "yy"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        text = render_table("T", ["col"], [])
        assert "col" in text

    def test_record_json_roundtrip(self, tmp_path):
        record = ExperimentRecord("exp1", "demo", settings={"n": 3},
                                  rows=[{"a": np.float64(1.5)}])
        path = save_record(record, tmp_path)
        assert path.exists()
        import json
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "exp1"
        assert data["rows"][0]["a"] == 1.5

    def test_accuracy_result_str(self):
        single = AccuracyResult("D1", "cfg", 91.234)
        multi = AccuracyResult("D1", "cfg", 91.234, 0.5, runs=3)
        assert "91.23%" in str(single)
        assert "±0.50" in str(multi)
