"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro import nn


def quadratic_params(rng):
    target = rng.standard_normal(5)
    param = nn.Parameter(np.zeros(5))
    return param, target


def loss_of(param, target):
    diff = param - nn.Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self, rng):
        param, target = quadratic_params(rng)
        opt = nn.SGD([param], lr=0.1)
        for _ in range(100):
            loss = loss_of(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(param.data - target).max() < 1e-4

    def test_momentum_accelerates(self, rng):
        param1, target = quadratic_params(rng)
        param2 = nn.Parameter(np.zeros(5))

        def run(param, momentum):
            opt = nn.SGD([param], lr=0.02, momentum=momentum)
            for _ in range(20):
                loss = loss_of(param, target)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return float(loss_of(param, target).data)

        assert run(param2, 0.9) < run(param1, 0.0)

    def test_weight_decay_shrinks(self):
        param = nn.Parameter(np.ones(3))
        opt = nn.SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(3)
        opt.step()
        assert np.all(param.data < 1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_none_grad_skipped(self):
        param = nn.Parameter(np.ones(2))
        opt = nn.SGD([param], lr=0.5)
        opt.step()  # no grad yet
        assert np.allclose(param.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        param, target = quadratic_params(rng)
        opt = nn.Adam([param], lr=0.1)
        for _ in range(200):
            loss = loss_of(param, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(param.data - target).max() < 1e-3

    def test_bias_correction_first_step(self):
        # After one step with Adam, |update| ≈ lr regardless of grad scale.
        param = nn.Parameter(np.array([0.0]))
        opt = nn.Adam([param], lr=0.01)
        param.grad = np.array([1e-4])
        opt.step()
        assert np.isclose(abs(param.data[0]), 0.01, rtol=0.01)


class TestClipAndSchedules:
    def test_clip_grad_norm(self):
        params = [nn.Parameter(np.zeros(4)) for _ in range(2)]
        for p in params:
            p.grad = np.full(4, 10.0)
        before = nn.clip_grad_norm(params, max_norm=1.0)
        assert before > 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
        assert np.isclose(total, 1.0)

    def test_clip_noop_below_threshold(self):
        param = nn.Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        nn.clip_grad_norm([param], max_norm=10.0)
        assert np.allclose(param.grad, [0.1, 0.1])

    def test_cosine_schedule_endpoints(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.CosineSchedule(opt, total_steps=10, lr_min=0.1)
        values = [sched.step() for _ in range(10)]
        assert values[0] < 1.0
        assert np.isclose(values[-1], 0.1)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_ramps_then_delegates(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.LinearWarmup(opt, warmup_steps=4)
        ramp = [sched.step() for _ in range(4)]
        assert np.allclose(ramp, [0.25, 0.5, 0.75, 1.0])
        assert sched.step() == 1.0
