"""Tests for the distributed work-queue executor (`repro.runtime.distrib`).

Three layers, increasingly end-to-end:

* the pure :class:`PlanState` lease state machine with injected time —
  every fault-tolerance transition is asserted deterministically;
* the NDJSON wire protocol's validation;
* a real broker serving real worker *subprocesses* (resolvable job
  targets live at module level), including chaos-injected crashes,
  poison quarantine, heartbeat-kept long jobs, and the acceptance
  test: a fig08-style grid run across 3 workers with crash faults and
  a SIGKILLed broker, resumed elastically with a different worker
  count, whose merged result is bitwise-identical (by SHA-256 of the
  pickled values) to a single-host serial run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.reliability import CRASH_EXIT_CODE, FaultInjector
from repro.runtime import Job, ResultCache, SweepPlan, SweepRunner
from repro.runtime.distrib import (
    FAILED,
    OK,
    PENDING,
    POISONED,
    REVOKED_EXIT_CODE,
    BrokerConfig,
    DistribProtocolError,
    PlanState,
    SweepBroker,
    WireLimits,
    decode_value,
    encode,
    encode_value,
    parse_message,
)
from repro.runtime.distrib.cli import values_digest

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Worker-resolvable job targets and chaos factories
# ----------------------------------------------------------------------
def _simulate(seed: int, sleep_s: float = 0.0) -> dict:
    """Deterministic seeded computation (stand-in for a design point)."""
    import numpy as np
    if sleep_s:
        time.sleep(sleep_s)
    rng = np.random.default_rng(seed)
    values = rng.normal(size=128)
    return {"seed": seed, "mean": float(values.mean()),
            "norm": float(np.linalg.norm(values))}


def _make_plan(n: int, sleep_s: float = 0.0,
               name: str = "distrib-test") -> SweepPlan:
    return SweepPlan(name, [
        Job(fn="tests.test_distrib:_simulate",
            kwargs={"seed": s, "sleep_s": sleep_s}, tag=f"sim/{s}")
        for s in range(n)])


#: Shape of the acceptance-test grid (fig08-style: one job per design
#: point), shared by the broker subprocess and the in-test serial run.
CHAOS_PLAN_JOBS = 12
CHAOS_PLAN_SLEEP = 0.25


def make_chaos_plan() -> SweepPlan:
    """``--plan`` factory for the acceptance test's broker subprocess."""
    return _make_plan(CHAOS_PLAN_JOBS, sleep_s=CHAOS_PLAN_SLEEP,
                      name="chaos-grid")


def make_chaos_injector() -> FaultInjector:
    """``--chaos`` factory: two crash faults, state dir from the env."""
    injector = FaultInjector(os.environ["DISTRIB_CHAOS_DIR"], seed=0)
    injector.inject("sim/2", "crash", times=1)
    injector.inject("sim/6", "crash", times=1)
    return injector


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def roundtrip(self, payload):
        return parse_message(encode(payload), WireLimits())

    def test_valid_ops_roundtrip(self):
        for payload in (
                {"op": "hello", "worker": "w1", "pid": 42},
                {"op": "lease", "worker": "w1"},
                {"op": "heartbeat", "worker": "w1", "index": 3,
                 "token": "3.1.7"},
                {"op": "result", "worker": "w1", "index": 0,
                 "token": "0.1.7", "status": "ok", "value_b64": "xxx"},
                {"op": "result", "worker": "w1", "index": 0,
                 "token": "0.1.7", "status": "error", "error": "boom"},
                {"op": "stats"},
                {"op": "goodbye", "worker": "w1"}):
            assert self.roundtrip(payload)["op"] == payload["op"]

    @pytest.mark.parametrize("line", [
        b"not json\n",
        b"[1, 2]\n",
        b'{"worker": "w"}\n',                       # no op
        b'{"op": "launch-missiles"}\n',             # unknown op
        b'{"op": "lease"}\n',                       # missing worker
        b'{"op": "heartbeat", "worker": "w", "token": "t"}\n',
        b'{"op": "heartbeat", "worker": "w", "index": true, '
        b'"token": "t"}\n',                         # bool is not an index
        b'{"op": "heartbeat", "worker": "w", "index": -1, '
        b'"token": "t"}\n',
        b'{"op": "heartbeat", "worker": "w", "index": 1, "token": ""}\n',
        b'{"op": "result", "worker": "w", "index": 0, "token": "t", '
        b'"status": "maybe"}\n',
    ])
    def test_malformed_messages_rejected(self, line):
        with pytest.raises(DistribProtocolError):
            parse_message(line, WireLimits())

    def test_oversized_line_rejected(self):
        limits = WireLimits(max_line_bytes=64)
        with pytest.raises(DistribProtocolError, match="exceeds"):
            parse_message(encode({"op": "hello", "worker": "w",
                                  "pad": "x" * 200}), limits)

    def test_overlong_worker_id_rejected(self):
        with pytest.raises(DistribProtocolError, match="worker"):
            parse_message(encode({"op": "hello", "worker": "w" * 300}),
                          WireLimits())

    def test_value_codec_roundtrips_numpy(self):
        import numpy as np
        value = {"rows": np.arange(6.0).reshape(2, 3), "label": "fig08"}
        decoded = decode_value(encode_value(value))
        assert decoded["label"] == "fig08"
        assert np.array_equal(decoded["rows"], value["rows"])

    def test_value_codec_rejects_garbage(self):
        with pytest.raises(DistribProtocolError):
            decode_value("!!!not-base64!!!")
        with pytest.raises(DistribProtocolError):
            decode_value("aGVsbG8=")  # valid base64, not a pickle


# ----------------------------------------------------------------------
# PlanState: the pure lease state machine (time injected)
# ----------------------------------------------------------------------
def _state(n=3, **kw) -> PlanState:
    plan = _make_plan(n)
    keys = [f"k{i}" for i in range(n)]
    defaults = dict(lease_s=10.0, max_attempts=3, backoff=1.0,
                    poison_after=3, session=99)
    defaults.update(kw)
    return PlanState(plan, keys, **defaults)


class TestPlanState:
    def test_grant_and_complete_happy_path(self):
        state = _state(2)
        verdict, rec = state.grant("w1", now=0.0)
        assert verdict == "grant"
        assert rec.index == 0 and rec.attempt == 1
        assert rec.token == "0.1.99"
        assert rec.lease_expires == 10.0
        verdict, done = state.complete(0, rec.token, status="ok",
                                       now=1.0, value={"v": 1}, wall_s=1.0)
        assert verdict == "accepted" and done.status == OK
        assert done.value == {"v": 1} and done.token is None

    def test_all_leased_answers_wait(self):
        state = _state(1)
        state.grant("w1", now=0.0)
        verdict, delay = state.grant("w2", now=0.0)
        assert verdict == "wait" and 0 < delay <= state.lease_s

    def test_done_when_terminal(self):
        state = _state(1)
        _, rec = state.grant("w1", now=0.0)
        state.complete(0, rec.token, status="ok", now=0.5, value=1)
        assert state.terminal
        assert state.grant("w2", now=1.0) == ("done", None)

    def test_heartbeat_renews_lease(self):
        state = _state(1)
        _, rec = state.grant("w1", now=0.0)
        verdict, _ = state.heartbeat(0, rec.token, now=8.0)
        assert verdict == "ok" and rec.lease_expires == 18.0
        assert state.reap(now=17.0) == []  # renewed past the old expiry

    def test_stale_heartbeat_and_result_discarded(self):
        state = _state(1)
        _, rec = state.grant("w1", now=0.0)
        old_token = rec.token
        assert state.reap(now=11.0) == [("lease_expired", rec)]
        # The zombie's renewals and result no longer own the job.
        assert state.heartbeat(0, old_token, now=11.5)[0] == "stale"
        verdict, _ = state.complete(0, old_token, status="ok", now=12.0,
                                    value=42)
        assert verdict == "stale"
        assert state.stale_results == 1 and state.stale_heartbeats == 1
        # Exactly one result still lands, through the new token.
        _, again = state.grant("w2", now=13.0)
        assert again.index == 0 and again.token != old_token
        assert state.complete(0, again.token, status="ok", now=14.0,
                              value=7)[0] == "accepted"
        assert state.jobs[0].value == 7

    def test_lease_expiry_requeues_with_backoff(self):
        state = _state(1, backoff=2.0)
        _, rec = state.grant("w1", now=0.0)
        state.reap(now=11.0)
        assert rec.status == PENDING and rec.deaths == 1
        assert rec.ready_at == 11.0 + 2.0  # backoff * 2**(attempt-1)
        verdict, delay = state.grant("w2", now=11.5)
        assert verdict == "wait" and delay == pytest.approx(1.5)
        assert state.grant("w2", now=13.5)[0] == "grant"

    def test_hard_timeout_revokes_heartbeating_attempt(self):
        state = _state(1, job_timeout=5.0)
        _, rec = state.grant("w1", now=0.0)
        # Heartbeats keep arriving, but the attempt outlived its budget.
        assert state.heartbeat(0, rec.token, now=4.0)[0] == "ok"
        verdict, revoked = state.heartbeat(0, rec.token, now=6.0)
        assert verdict == "revoked" and revoked is rec
        assert rec.status == PENDING and rec.deaths == 1

    def test_reap_revokes_past_attempt_deadline(self):
        state = _state(1, job_timeout=3.0)
        _, rec = state.grant("w1", now=0.0)
        assert state.reap(now=4.0) == [("revoked", rec)]
        assert rec.deaths == 1

    def test_disconnect_releases_only_that_workers_leases(self):
        state = _state(3)
        _, a = state.grant("w1", now=0.0)
        _, b = state.grant("w2", now=0.0)
        transitions = state.release_worker("w1", now=1.0)
        assert transitions == [("disconnect", a)]
        assert a.status == PENDING and b.status == "leased"

    def test_poison_after_repeated_worker_deaths(self):
        state = _state(1, poison_after=2, max_attempts=10)
        for round_no in range(2):
            _, rec = state.grant(f"w{round_no}", now=float(100 * round_no))
            state.release_worker(f"w{round_no}",
                                 now=float(100 * round_no + 1))
        assert rec.status == POISONED
        assert rec.error_type == "PoisonJob"
        assert "quarantined as poison after 2 worker death(s)" in rec.error
        assert "disconnect" in rec.error  # evidence lines

    def test_structured_errors_never_poison(self):
        """A job that *returns* errors is retried, then failed — the
        workers survived, so it is not poison evidence."""
        state = _state(1, max_attempts=3, poison_after=2, backoff=0.0)
        for n in range(3):
            _, rec = state.grant("w1", now=float(10 * n))
            state.complete(rec.index, rec.token, status="error",
                           now=float(10 * n + 1), error="Traceback ...",
                           error_type="ValueError")
        assert rec.status == FAILED and rec.deaths == 0
        assert rec.error_type == "ValueError"

    def test_attempts_exhausted_by_deaths_fails_with_evidence(self):
        state = _state(1, max_attempts=2, poison_after=5)
        for n in range(2):
            _, rec = state.grant("w1", now=float(100 * n))
            state.reap(now=float(100 * n) + 11.0)
        assert rec.status == FAILED
        assert rec.error_type == "WorkerDeath"

    def test_mark_cached_resolves_without_attempts(self):
        state = _state(2)
        rec = state.mark_cached(1, {"seed": 1})
        assert rec.status == OK and rec.cache_hit and rec.attempt == 0

    def test_restore_replays_queue_state_exactly(self):
        state = _state(4, max_attempts=3)
        state.restore([
            {"event": "lease", "index": 0, "attempt": 2, "key": "k0"},
            {"event": "requeue", "index": 0, "attempt": 2, "deaths": 1},
            {"event": "job", "index": 1, "status": "ok", "attempts": 1},
            {"event": "job", "index": 2, "status": "failed",
             "attempts": 3, "error_type": "ValueError"},
            {"event": "poison", "index": 3, "deaths": 3,
             "error": "quarantined"},
            {"event": "from-the-future", "index": 0},   # unknown: ignored
            {"event": "lease", "index": 99, "attempt": 1},  # bad index
            {"event": "lease"},                          # missing fields
        ])
        # In-flight attempt stays consumed; the job itself is pending.
        assert state.jobs[0].status == PENDING
        assert state.jobs[0].attempt == 2 and state.jobs[0].deaths == 1
        # "ok" is NOT trusted from the journal — the cache is the
        # authority on recoverable values; this job re-executes.
        assert state.jobs[1].status == PENDING
        assert state.jobs[2].status == FAILED
        assert state.jobs[2].error_type == "ValueError"
        assert state.jobs[3].status == POISONED

    def test_counts_shape(self):
        state = _state(2)
        state.grant("w1", now=0.0)
        counts = state.counts()
        assert counts["jobs"] == 2 and counts["leased"] == 1
        assert counts["pending"] == 1
        for key in ("ok", "failed", "poisoned", "requeues",
                    "stale_results", "stale_heartbeats"):
            assert counts[key] == 0


# ----------------------------------------------------------------------
# Broker + worker subprocesses
# ----------------------------------------------------------------------
def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), str(REPO_ROOT),
                    env.get("PYTHONPATH", "")) if p)
    return env


def _spawn_worker(port, *, cache=None, retries=3, env=None):
    cmd = [sys.executable, "-m", "repro.runtime.distrib", "worker",
           "--connect", f"127.0.0.1:{port}",
           "--connect-retries", str(retries)]
    if cache is not None:
        cmd += ["--cache-dir", str(cache)]
    return subprocess.Popen(cmd, env=env or _worker_env(), cwd=REPO_ROOT,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _start_broker(plan, **kwargs):
    broker = SweepBroker(plan, **kwargs)
    box = {}

    def serve():
        box["result"] = broker.run()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert broker.started.wait(15), "broker never bound its listener"
    return broker, thread, box


def _finish(thread, box, workers=(), timeout=90):
    thread.join(timeout)
    assert not thread.is_alive(), "broker did not finish"
    codes = []
    for proc in workers:
        try:
            codes.append(proc.wait(timeout=30))
        except subprocess.TimeoutExpired:
            proc.kill()
            codes.append(None)
    return box["result"], codes


class TestBrokerIntegration:
    def test_two_workers_match_serial_run(self, tmp_path):
        plan = _make_plan(8)
        broker, thread, box = _start_broker(
            plan, cache=tmp_path / "cache",
            config=BrokerConfig(lease_s=5.0))
        workers = [_spawn_worker(broker.port, cache=tmp_path / "cache")
                   for _ in range(2)]
        result, codes = _finish(thread, box, workers)
        assert codes == [0, 0]
        assert result.ok
        serial = SweepRunner().run(_make_plan(8))
        assert result.values == serial.values
        assert all(o.worker for o in result.outcomes)
        assert result.summary["jobs"] == 8

    def test_cache_hits_resolve_before_any_worker(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        plan = _make_plan(4)
        SweepRunner(cache=cache).run(_make_plan(4))  # warm every key
        broker, thread, box = _start_broker(plan, cache=cache)
        result, _ = _finish(thread, box)  # no workers needed at all
        assert result.ok
        assert all(o.cache_hit for o in result.outcomes)

    def test_heartbeats_keep_a_long_job_leased(self, tmp_path):
        # The job takes ~4 lease windows; heartbeats must renew it.
        plan = _make_plan(2, sleep_s=2.0)
        broker, thread, box = _start_broker(
            plan, cache=tmp_path / "cache",
            config=BrokerConfig(lease_s=0.5))
        workers = [_spawn_worker(broker.port, cache=tmp_path / "cache")
                   for _ in range(2)]
        result, codes = _finish(thread, box, workers)
        assert result.ok and codes == [0, 0]
        assert broker.state.counts()["requeues"] == 0
        assert all(o.attempts == 1 for o in result.outcomes)

    def test_chaos_crash_requeues_and_still_matches_serial(self, tmp_path):
        injector = FaultInjector(tmp_path / "chaos", seed=0)
        injector.inject("sim/1", "crash", times=1)
        plan = _make_plan(6)
        journal = tmp_path / "run.jsonl"
        broker, thread, box = _start_broker(
            plan, cache=tmp_path / "cache", journal=journal,
            fault_injector=injector,
            config=BrokerConfig(lease_s=5.0, backoff=0.05))
        workers = [_spawn_worker(broker.port, cache=tmp_path / "cache")
                   for _ in range(2)]
        result, codes = _finish(thread, box, workers)
        assert result.ok
        # One worker died to the injected crash (CRASH_EXIT_CODE)...
        assert sorted(codes) == sorted([0, CRASH_EXIT_CODE])
        assert broker.state.counts()["requeues"] >= 1
        # ...and the merged values are still bitwise those of a clean run.
        serial = SweepRunner().run(_make_plan(6))
        assert result.values == serial.values
        events = [json.loads(line)
                  for line in journal.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert "lease" in kinds and "requeue" in kinds
        requeue = next(e for e in events if e["event"] == "requeue")
        assert requeue["reason"] == "disconnect"

    def test_poison_job_quarantined_with_evidence(self, tmp_path):
        injector = FaultInjector(tmp_path / "chaos", seed=0)
        injector.inject("sim/0", "crash", times=10)  # kills every taker
        plan = _make_plan(4)
        broker, thread, box = _start_broker(
            plan, cache=tmp_path / "cache", fault_injector=injector,
            config=BrokerConfig(lease_s=5.0, backoff=0.05,
                                poison_after=2, max_attempts=10))
        # Two workers die to the poison job; a third finishes the rest.
        first = _spawn_worker(broker.port, cache=tmp_path / "cache")
        assert first.wait(timeout=30) == CRASH_EXIT_CODE
        second = _spawn_worker(broker.port, cache=tmp_path / "cache")
        assert second.wait(timeout=30) == CRASH_EXIT_CODE
        third = _spawn_worker(broker.port, cache=tmp_path / "cache")
        result, codes = _finish(thread, box, [third])
        assert codes == [0]
        poisoned = result.outcomes[0]
        assert poisoned.status == "poisoned"
        assert "quarantined as poison" in poisoned.error
        assert all(o.ok for o in result.outcomes[1:])
        assert not result.ok
        assert broker.state.counts()["poisoned"] == 1

    def test_hard_job_timeout_revokes_wedged_worker(self, tmp_path):
        plan = _make_plan(1, sleep_s=30.0)
        broker, thread, box = _start_broker(
            plan, cache=tmp_path / "cache",
            config=BrokerConfig(lease_s=0.4, job_timeout=1.0,
                                max_attempts=1, backoff=0.0))
        worker = _spawn_worker(broker.port, cache=tmp_path / "cache")
        result, codes = _finish(thread, box, [worker])
        # The heartbeat thread hard-exited the wedged worker process.
        assert codes == [REVOKED_EXIT_CODE]
        assert result.outcomes[0].status == "failed"
        assert result.outcomes[0].error_type == "WorkerDeath"

    def test_stats_op_over_the_wire(self, tmp_path):
        import socket as socket_mod
        plan = _make_plan(2, sleep_s=1.5)
        broker, thread, box = _start_broker(plan, cache=tmp_path / "cache")
        worker = _spawn_worker(broker.port, cache=tmp_path / "cache")
        time.sleep(0.5)  # let it lease something
        with socket_mod.create_connection(("127.0.0.1", broker.port),
                                          timeout=10) as sock:
            sock.sendall(encode({"op": "stats"}))
            stats = json.loads(sock.makefile("rb").readline())
        assert stats["op"] == "stats"
        assert stats["jobs"] == 2
        assert stats["plan"] == plan.name
        assert "distrib_grants" in stats["metrics"].replace(".", "_") \
            or "distrib" in stats["metrics"]
        _finish(thread, box, [worker])


# ----------------------------------------------------------------------
# Acceptance: chaos grid across 3 workers, broker SIGKILLed mid-plan,
# resumed elastically with 2 — merged result bitwise-identical to a
# single-host serial run.
# ----------------------------------------------------------------------
def _spawn_broker_subprocess(tmp_path, *, resume, env):
    cmd = [sys.executable, "-m", "repro.runtime.distrib", "broker",
           "--plan", "tests.test_distrib:make_chaos_plan",
           "--chaos", "tests.test_distrib:make_chaos_injector",
           "--cache-dir", str(tmp_path / "cache"),
           "--journal", str(tmp_path / "run.jsonl"),
           "--lease", "5", "--backoff", "0.05", "--max-attempts", "4",
           "--poison-after", "4"]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(cmd, env=env, cwd=REPO_ROOT,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def _read_broker_port(proc, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("broker exited before announcing a port: "
                                 + proc.stderr.read())
        if line.startswith("BROKER_PORT="):
            return int(line.split("=", 1)[1])
    raise AssertionError("timed out waiting for BROKER_PORT")


def _journal_ok_count(journal: Path) -> int:
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text().splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("event") == "job" and record.get("status") == "ok":
            count += 1
    return count


@pytest.mark.slow
class TestChaosAcceptance:
    def test_killed_broker_resumes_bitwise_identical(self, tmp_path):
        env = _worker_env()
        env["DISTRIB_CHAOS_DIR"] = str(tmp_path / "chaos")
        journal = tmp_path / "run.jsonl"

        # --- Phase 1: 3 workers, crash faults firing, broker SIGKILLed.
        broker1 = _spawn_broker_subprocess(tmp_path, resume=False, env=env)
        try:
            port = _read_broker_port(broker1)
            phase1_workers = [_spawn_worker(port, cache=tmp_path / "cache",
                                            retries=1, env=env)
                              for _ in range(3)]
            deadline = time.monotonic() + 120
            while _journal_ok_count(journal) < 3:
                assert time.monotonic() < deadline, (
                    "phase 1 never completed 3 jobs")
                assert broker1.poll() is None, (
                    "broker died early: " + broker1.stderr.read())
                time.sleep(0.1)
            os.kill(broker1.pid, signal.SIGKILL)
            broker1.wait(timeout=30)
        finally:
            if broker1.poll() is None:
                broker1.kill()
        for proc in phase1_workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)

        done_before = _journal_ok_count(journal)
        assert done_before >= 3

        # --- Phase 2: resume with a *different* worker count (2), run
        # under a tiny supervisor — leftover crash faults may still
        # kill workers, and elasticity means replacements just join.
        broker2 = _spawn_broker_subprocess(tmp_path, resume=True, env=env)
        retired: list[int] = []
        try:
            port = _read_broker_port(broker2)
            stdout_box: dict = {}
            drainer = threading.Thread(
                target=lambda: stdout_box.update(
                    out=broker2.stdout.read()), daemon=True)
            drainer.start()
            live = [_spawn_worker(port, cache=tmp_path / "cache",
                                  retries=3, env=env) for _ in range(2)]
            deadline = time.monotonic() + 180
            while broker2.poll() is None:
                assert time.monotonic() < deadline, "phase 2 stalled"
                for i, proc in enumerate(live):
                    code = proc.poll()
                    if code is not None and broker2.poll() is None \
                            and len(retired) < 8:
                        retired.append(code)
                        live[i] = _spawn_worker(
                            port, cache=tmp_path / "cache", retries=3,
                            env=env)
                time.sleep(0.2)
            assert broker2.wait(timeout=30) == 0, broker2.stderr.read()
            drainer.join(timeout=30)
            out = stdout_box["out"]
        finally:
            if broker2.poll() is None:
                broker2.kill()
            for proc in live:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
        # Mid-phase exits are chaos crashes or clean done-drain exits
        # (a worker can finish while the broker lingers), nothing else.
        assert all(code in (0, CRASH_EXIT_CODE) for code in retired)

        digest_line = next(line for line in out.splitlines()
                           if line.startswith("RESULT_SHA256="))
        distributed_digest = digest_line.split("=", 1)[1]

        # --- The proof: bitwise-identical to a single-host serial run
        # (per-value pickle digests, chained — see values_digest).
        serial = SweepRunner().run(make_chaos_plan())
        assert distributed_digest == values_digest(serial.values)

        # --- Journal forensics: chaos requeues happened, the second
        # session resumed prior work, and every job is terminal ok.
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        headers = [r for r in records if r.get("event") == "plan"]
        assert len(headers) == 2
        assert headers[1]["resumed"] >= 3
        requeues = [r for r in records if r.get("event") == "requeue"]
        assert requeues, "injected crashes never produced a requeue"
        assert _journal_ok_count(journal) >= CHAOS_PLAN_JOBS
