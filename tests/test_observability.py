"""Tests for ``repro.observability`` — tracing, metrics, clock, report.

The load-bearing property is **neutrality**: enabling tracing must not
change a single result bit.  The instrumented paths (crossbar VMM,
training, runtime jobs) never consume RNG or reach a cache key, and
the property test here proves it by diffing pickled sweep values with
``SWORDFISH_TRACE`` on vs off.

Job targets live at module level so worker processes (and the serial
in-process path) can resolve them by dotted name.
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time

import pytest

from repro.observability import (
    ENV_TRACE,
    ENV_TRACE_FILE,
    Histogram,
    MetricsRegistry,
    NullSpan,
    Tracer,
    build_flame_table,
    get_tracer,
    labelset,
    load_span_events,
    render_flame_table,
    trace_span,
    tracing_enabled,
    wall_now,
)
from repro.observability.cli import main as obs_main
from repro.observability.tracer import NULL_SPAN
from repro.runtime import (
    Job,
    JsonlSink,
    ResultCache,
    SweepPlan,
    SweepRunner,
    Telemetry,
)
from repro.runtime.telemetry import MAX_HOOK_FAILURES, SummaryAggregator


# ----------------------------------------------------------------------
# Worker-resolvable job targets
# ----------------------------------------------------------------------
def _seeded(seed: int) -> dict:
    import numpy as np
    rng = np.random.default_rng(seed)
    values = rng.normal(size=128)
    return {"seed": seed, "mean": float(values.mean())}


def _vmm(seed: int) -> list[float]:
    """A tiny non-ideal crossbar VMM — exercises the instrumented engine."""
    import numpy as np
    from repro.crossbar import CrossbarBank, CrossbarConfig
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(16, 12))
    bank = CrossbarBank(weights, CrossbarConfig(size=8), rng=seed + 1)
    out = bank.vmm(rng.normal(size=(3, 16)))
    return [float(v) for v in np.asarray(out).ravel()]


def _nap(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _boom() -> None:
    raise RuntimeError("deliberate failure")


@pytest.fixture
def clean_global_tracer(monkeypatch):
    """Isolate tests that drive the process-wide tracer through env."""
    monkeypatch.delenv(ENV_TRACE, raising=False)
    monkeypatch.delenv(ENV_TRACE_FILE, raising=False)
    tracer = get_tracer()
    tracer.close()
    tracer.drain()
    yield tracer
    # The runtime CLI writes ENV_TRACE directly; scrub it even if this
    # test's monkeypatch never recorded the variable.
    os.environ.pop(ENV_TRACE, None)
    os.environ.pop(ENV_TRACE_FILE, None)
    tracer.close()
    tracer.drain()


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
class TestClock:
    def test_monotonic_and_wall_anchored(self):
        stamps = [wall_now() for _ in range(500)]
        assert stamps == sorted(stamps)
        assert abs(stamps[-1] - time.time()) < 5.0


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        with span as inner:
            inner.set(more="attrs")  # must be a silent no-op
        assert tracer.drain() == []

    def test_env_toggles_global_tracer(self, clean_global_tracer,
                                       monkeypatch):
        assert not tracing_enabled()
        assert isinstance(trace_span("x"), NullSpan)
        for falsey in ("", "0", "false", "off", "no", "FALSE"):
            monkeypatch.setenv(ENV_TRACE, falsey)
            assert not tracing_enabled()
        monkeypatch.setenv(ENV_TRACE, "1")
        assert tracing_enabled()
        assert clean_global_tracer.path is None
        with trace_span("probe"):
            pass
        assert [e["name"] for e in clean_global_tracer.drain()] == ["probe"]

    def test_pathlike_env_value_sets_trace_file(self, clean_global_tracer,
                                                monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_TRACE, str(tmp_path / "t.jsonl"))
        assert tracing_enabled()
        assert clean_global_tracer.path == str(tmp_path / "t.jsonl")
        monkeypatch.setenv(ENV_TRACE, "1")
        monkeypatch.setenv(ENV_TRACE_FILE, str(tmp_path / "u.jsonl"))
        assert clean_global_tracer.path == str(tmp_path / "u.jsonl")

    def test_nesting_links_parent_and_child(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent", figure="fig08"):
            with tracer.span("child"):
                pass
            with tracer.span("sibling"):
                pass
        events = {e["name"]: e for e in tracer.drain()}
        parent = events["parent"]
        assert parent["parent"] == ""
        assert events["child"]["parent"] == parent["span"]
        assert events["sibling"]["parent"] == parent["span"]
        assert events["child"]["span"] != events["sibling"]["span"]
        assert parent["figure"] == "fig08"
        # Children close before the parent, and durations nest.
        assert parent["dur_s"] >= events["child"]["dur_s"]
        assert all(e["dur_s"] >= 0.0 and e["ts"] > 0 for e in events.values())

    def test_exception_is_recorded_and_propagated(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("nope")
        (event,) = tracer.drain()
        assert event["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s") as span:
            span.set(loss=0.25, note="ok")
        (event,) = tracer.drain()
        assert event["loss"] == 0.25 and event["note"] == "ok"

    def test_non_scalar_attrs_are_stringified(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", shape=(3, 4)):
            pass
        (event,) = tracer.drain()
        assert event["shape"] == "(3, 4)"

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer(enabled=True)

        def work(tid: int) -> None:
            for i in range(50):
                with tracer.span("outer", tid=tid):
                    with tracer.span("inner", tid=tid, i=i):
                        pass

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = tracer.drain()
        assert len(events) == 4 * 50 * 2
        by_id = {e["span"]: e for e in events}
        for event in events:
            if event["name"] == "inner":
                parent = by_id[event["parent"]]
                # A span's parent was opened by the same thread.
                assert parent["tid"] == event["tid"]

    def test_file_export_appends_whole_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # Foreign telemetry lines and a torn tail must not break loading.
        path.write_text('{"event": "finish", "status": "ok"}\n',
                        encoding="utf-8")
        tracer = Tracer(enabled=True, path=path)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"torn')  # killed writer left a partial line
        events = load_span_events(path)
        assert [e["name"] for e in events] == ["b", "a"]
        # Every line in the file is valid JSON except the torn one.
        lines = path.read_text().splitlines()
        assert len(lines) == 4


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2.5)
        assert registry.counter("jobs").value == 3.5
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)
        assert registry.gauge("loss").value is None
        registry.gauge("loss").set(0.5)
        assert registry.gauge("loss").value == 0.5

    def test_histogram_empty(self):
        hist = Histogram("empty")
        assert hist.quantile(0.5) is None
        assert hist.mean is None
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] is None and snap["p99"] is None

    def test_histogram_single_sample(self):
        hist = Histogram("one")
        hist.observe(7.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == 7.0
        assert snap["p50"] == snap["p95"] == snap["p99"] == 7.0
        assert snap["mean"] == 7.0

    def test_histogram_heavy_tail_quantiles(self):
        hist = Histogram("tail")
        # 99 small values and one enormous outlier: p50/p95 must not be
        # dragged by the tail, p99+ must see it.
        for value in range(1, 100):
            hist.observe(float(value))
        hist.observe(1e9)
        assert hist.quantile(0.50) == 50.0
        assert hist.quantile(0.95) == 95.0
        assert hist.quantile(1.00) == 1e9
        assert hist.max == 1e9
        assert hist.quantile(0.0) == 1.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_bounded_compaction_keeps_exact_aggregates(self):
        hist = Histogram("bounded", max_samples=8)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000
        assert hist.total == sum(range(1000))
        assert hist.min == 0.0 and hist.max == 999.0
        assert len(hist._samples) <= 8
        # Quantiles remain order-of-magnitude right after thinning.
        assert 0.0 <= hist.quantile(0.5) <= 999.0

    def test_registry_get_or_create_and_reset(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")
        registry.counter("c").inc()
        registry.reset()
        assert registry.counter("c").value == 0.0

    def test_prometheus_render(self):
        registry = MetricsRegistry()
        registry.counter("vmm.calls").inc(3)
        registry.gauge("train.loss").set(0.125)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("job.wall").observe(value)
        text = registry.render_prometheus()
        assert "# TYPE swordfish_vmm_calls_total counter" in text
        assert "swordfish_vmm_calls_total 3" in text
        assert "swordfish_train_loss 0.125" in text
        assert 'swordfish_job_wall{quantile="0.5"} 2' in text
        assert "swordfish_job_wall_count 4" in text
        assert text.endswith("\n")

    def test_labelset_is_canonical(self):
        assert labelset(None) == ()
        assert labelset({}) == ()
        assert labelset({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        # Order of insertion never matters: one instrument per set.
        registry = MetricsRegistry()
        first = registry.counter("hits", labels={"a": 1, "b": 2})
        second = registry.counter("hits", labels={"b": 2, "a": 1})
        assert first is second

    def test_labeled_instruments_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("errors", labels={"code": "timeout"}).inc(2)
        registry.counter("errors", labels={"code": "oversized"}).inc()
        registry.counter("errors").inc(5)       # unlabeled base series
        snap = registry.snapshot()["counters"]
        assert snap["errors"] == 5
        assert snap['errors{code="timeout"}'] == 2
        assert snap['errors{code="oversized"}'] == 1

    def test_prometheus_one_type_header_per_name(self):
        registry = MetricsRegistry()
        registry.counter("serve.errors", labels={"code": "timeout"}).inc()
        registry.counter("serve.errors", labels={"code": "draining"}).inc(3)
        registry.gauge("serve.inflight", labels={"client": "c1"}).set(4)
        registry.gauge("serve.inflight", labels={"client": "c2"}).set(1)
        registry.histogram("serve.wall", labels={"stage": "decode"}) \
            .observe(2.0)
        text = registry.render_prometheus()
        assert text.count("# TYPE swordfish_serve_errors_total") == 1
        assert text.count("# TYPE swordfish_serve_inflight") == 1
        assert 'swordfish_serve_errors_total{code="draining"} 3' in text
        assert 'swordfish_serve_errors_total{code="timeout"} 1' in text
        assert 'swordfish_serve_inflight{client="c1"} 4' in text
        assert 'swordfish_serve_inflight{client="c2"} 1' in text
        # Histogram label sets compose with the quantile label and the
        # _sum/_count suffixes.
        assert ('swordfish_serve_wall{stage="decode",quantile="0.5"} 2'
                in text)
        assert 'swordfish_serve_wall_sum{stage="decode"} 2' in text
        assert 'swordfish_serve_wall_count{stage="decode"} 1' in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd", labels={"msg": 'a"b\\c\nd'}).inc()
        text = registry.render_prometheus()
        assert 'swordfish_odd_total{msg="a\\"b\\\\c\\nd"} 1' in text


# ----------------------------------------------------------------------
# Flame table / report
# ----------------------------------------------------------------------
def _span(name, span, parent, dur, pid=1):
    return {"event": "span", "name": name, "span": span, "parent": parent,
            "ts": 0.0, "dur_s": dur, "pid": pid, "thread": "t"}


class TestFlameTable:
    def test_self_time_subtracts_children(self):
        events = [
            _span("leaf", "1-2", "1-1", 0.4),
            _span("leaf", "1-3", "1-1", 0.3),
            _span("root", "1-1", "", 1.0),
        ]
        rows = {row.name: row for row in build_flame_table(events)}
        assert rows["root"].total_s == pytest.approx(1.0)
        assert rows["root"].self_s == pytest.approx(0.3)
        assert rows["leaf"].self_s == pytest.approx(0.7)
        assert rows["leaf"].count == 2
        # Self times partition the root duration exactly.
        assert sum(r.self_s for r in rows.values()) == pytest.approx(1.0)

    def test_pid_scoping_prevents_cross_wiring(self):
        # Two processes reuse span id "1-1"; child time must only be
        # charged against the parent in the SAME process.
        events = [
            _span("root", "1-1", "", 1.0, pid=1),
            _span("child", "1-2", "1-1", 0.5, pid=1),
            _span("root", "1-1", "", 2.0, pid=2),
        ]
        rows = {row.name: row for row in build_flame_table(events)}
        assert rows["root"].self_s == pytest.approx(0.5 + 2.0)

    def test_clock_skew_never_goes_negative(self):
        events = [
            _span("root", "1-1", "", 0.1),
            _span("child", "1-2", "1-1", 0.2),  # child "longer" than parent
        ]
        rows = {row.name: row for row in build_flame_table(events)}
        assert rows["root"].self_s == 0.0

    def test_render_orders_by_self_time(self):
        events = [
            _span("fast", "1-1", "", 0.01),
            _span("slow", "1-2", "", 2.0),
        ]
        text = render_flame_table(build_flame_table(events))
        assert text.index("slow") < text.index("fast")
        assert "total self-time: 2.0100 s across 2 span(s)" in text

    def test_render_limit_reports_hidden_rows(self):
        events = [_span(f"s{i}", f"1-{i}", "", 0.1) for i in range(5)]
        text = render_flame_table(build_flame_table(events), limit=2)
        assert "... 3 more span name(s)" in text


# ----------------------------------------------------------------------
# Telemetry bugfixes (the PR's accounting fixes)
# ----------------------------------------------------------------------
class TestSummaryAggregator:
    def test_failed_jobs_count_toward_neither_cache_bucket(self):
        agg = SummaryAggregator()
        for _ in range(3):
            agg({"event": "submit"})
        agg({"event": "finish", "status": "ok", "cache": "hit",
             "wall_s": 0.0})
        agg({"event": "finish", "status": "ok", "cache": "miss",
             "wall_s": 0.1})
        # Failed finishes carry cache=miss on the wire; they must NOT
        # land in the miss column.
        agg({"event": "finish", "status": "failed", "cache": "miss",
             "reason": "error", "wall_s": 0.2})
        summary = agg.summary()
        assert summary["cache_hits"] == 1
        assert summary["cache_misses"] == 1
        assert summary["failed"] == 1
        assert (summary["cache_hits"] + summary["cache_misses"]
                + summary["failed"]) == summary["jobs"]

    def test_timeout_failures_count_timeouts(self):
        agg = SummaryAggregator()
        agg({"event": "submit"})
        agg({"event": "finish", "status": "failed", "cache": "miss",
             "reason": "timeout", "wall_s": 1.0})
        summary = agg.summary()
        assert summary["timeouts"] == 1 and summary["cache_misses"] == 0


class TestTelemetryHookTolerance:
    def test_single_transient_failure_keeps_hook_subscribed(self):
        telemetry = Telemetry()
        seen: list[dict] = []
        fail_once = {"armed": True}

        def flaky_hook(event):
            if fail_once.pop("armed", False):
                raise OSError("disk momentarily full")
            seen.append(event)

        telemetry.subscribe(flaky_hook)
        telemetry.emit("a")
        telemetry.emit("b")
        assert [e["event"] for e in seen] == ["b"]
        assert len(telemetry.hook_errors) == 1
        assert "disk momentarily full" in telemetry.hook_errors[0]

    def test_persistent_failure_unsubscribes_after_budget(self):
        telemetry = Telemetry()
        calls = {"n": 0}

        def broken_hook(event):
            calls["n"] += 1
            raise RuntimeError("always broken")

        telemetry.subscribe(broken_hook)
        for i in range(MAX_HOOK_FAILURES + 5):
            telemetry.emit("tick", i=i)
        assert calls["n"] == MAX_HOOK_FAILURES
        assert len(telemetry.hook_errors) == MAX_HOOK_FAILURES

    def test_hook_errors_surface_in_summary_event_and_result(self):
        telemetry = Telemetry()
        events: list[dict] = []
        telemetry.subscribe(events.append)

        def broken_hook(event):
            raise RuntimeError("boom")

        telemetry.subscribe(broken_hook)
        plan = SweepPlan("h", [
            Job(fn="tests.test_observability:_seeded", kwargs={"seed": 0})])
        result = SweepRunner(workers=1, telemetry=telemetry).run(plan)
        assert result.ok
        assert result.summary["hook_errors"]["count"] >= 1
        assert "boom" in result.summary["hook_errors"]["first"]
        (summary_event,) = [e for e in events if e["event"] == "summary"]
        assert summary_event["hook_errors"]["count"] >= 1

    def test_clean_run_has_no_hook_errors_key(self):
        result = SweepRunner(workers=1).run(SweepPlan("ok", [
            Job(fn="tests.test_observability:_seeded", kwargs={"seed": 1})]))
        assert "hook_errors" not in result.summary


class TestJsonlSinkContextManager:
    def test_context_manager_closes_handle(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink({"event": "start"})
            assert sink._fh is not None
        assert sink._fh is None
        assert json.loads(path.read_text())["event"] == "start"

    def test_close_then_reuse_reopens(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        with sink:
            sink({"event": "one"})
        sink({"event": "two"})
        sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_event_timestamps_are_monotonic(self):
        telemetry = Telemetry()
        events: list[dict] = []
        telemetry.subscribe(events.append)
        for i in range(100):
            telemetry.emit("tick", i=i)
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)


class TestFailedJobCacheAccounting:
    def test_end_to_end_failed_job_is_not_a_cache_miss(self, tmp_path):
        plan = SweepPlan("mixed", [
            Job(fn="tests.test_observability:_seeded", kwargs={"seed": 0}),
            Job(fn="tests.test_observability:_boom", kwargs={}),
        ])
        result = SweepRunner(workers=1, retries=0,
                             cache=tmp_path / "cache").run(plan)
        summary = result.summary
        assert summary["failed"] == 1
        assert summary["cache_misses"] == 1  # only the job that succeeded
        assert summary["cache_hits"] == 0
        assert (summary["cache_hits"] + summary["cache_misses"]
                + summary["failed"]) == summary["jobs"]


# ----------------------------------------------------------------------
# End-to-end: traced sweep, report CLI, and the neutrality property
# ----------------------------------------------------------------------
def _checksums(result) -> list[str]:
    import hashlib
    return [hashlib.sha256(pickle.dumps(v)).hexdigest()
            for v in result.values]


class TestTracedSweep:
    def test_traced_run_is_bitwise_identical(self, clean_global_tracer,
                                             monkeypatch, tmp_path):
        """The neutrality property: tracing changes no result bit."""
        plan = SweepPlan("neutral", [
            Job(fn="tests.test_observability:_vmm", kwargs={"seed": s})
            for s in range(3)
        ] + [
            Job(fn="tests.test_observability:_seeded", kwargs={"seed": s})
            for s in range(3)
        ])
        monkeypatch.delenv(ENV_TRACE, raising=False)
        baseline = SweepRunner(workers=1,
                               cache=tmp_path / "cache_off").run(plan)
        monkeypatch.setenv(ENV_TRACE, str(tmp_path / "trace.jsonl"))
        traced = SweepRunner(workers=1,
                             cache=tmp_path / "cache_on").run(plan)
        assert traced.ok and baseline.ok
        assert _checksums(traced) == _checksums(baseline)
        # ...and the trace actually recorded the instrumented spans.
        events = load_span_events(tmp_path / "trace.jsonl")
        names = {e["name"] for e in events}
        assert "runtime.sweep" in names and "runtime.job" in names
        assert "vmm" in names and "vmm.dac" in names

    def test_flame_table_total_matches_job_wall(self, clean_global_tracer,
                                                monkeypatch, tmp_path):
        """Span self-times account for the measured job wall-clock."""
        trace = tmp_path / "trace.jsonl"
        monkeypatch.setenv(ENV_TRACE, str(trace))
        plan = SweepPlan("timed", [
            Job(fn="tests.test_observability:_nap",
                kwargs={"seconds": 0.05}, tag="nap")])
        result = SweepRunner(workers=1).run(plan)
        assert result.ok
        rows = build_flame_table(load_span_events(trace))
        total_self = sum(row.self_s for row in rows)
        job_wall = result.summary["exec_wall_s"]
        # The runtime.job span wraps exactly the region timed as wall_s,
        # and runtime.sweep wraps the job; self-times within 10%.
        assert total_self >= job_wall * 0.9
        assert total_self <= result.summary["run_wall_s"] * 1.1 + 0.05

    def test_report_cli_end_to_end(self, clean_global_tracer, monkeypatch,
                                   tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        monkeypatch.setenv(ENV_TRACE, str(trace))
        plan = SweepPlan("cli", [
            Job(fn="tests.test_observability:_vmm", kwargs={"seed": 7})])
        assert SweepRunner(workers=1).run(plan).ok
        assert obs_main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "runtime.job" in out
        assert "total self-time:" in out

    def test_report_cli_missing_and_empty(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text('{"event": "finish"}\n', encoding="utf-8")
        assert obs_main(["report", str(empty)]) == 1
        capsys.readouterr()

    def test_metrics_cli_dumps_registry(self, capsys):
        from repro.observability import get_metrics
        get_metrics().counter("cli.probe").inc()
        try:
            assert obs_main(["metrics"]) == 0
            out = capsys.readouterr().out
            assert "swordfish_cli_probe_total 1" in out
        finally:
            get_metrics().reset()

    def test_runtime_cli_trace_flag(self, clean_global_tracer, monkeypatch,
                                    tmp_path, capsys):
        from repro.runtime.cli import main as runtime_main
        trace = tmp_path / "fig14.jsonl"
        code = runtime_main(["run", "fig14", "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert load_span_events(trace)
