"""Regression tests for the division guards SWD005 surfaced.

Same bug class as the PR 1 ``quantize_symmetric`` zero-step fix: a
denominator that can silently reach zero.  Each guard added while
burning down the analyzer's findings gets a test pinning the loud
failure (or the validated construction) in place.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basecaller.hmm import HMMBasecaller
from repro.crossbar.adc import ADCConfig, apply_adc
from repro.crossbar.dac import DACConfig, apply_dac
from repro.experiments.fig10_enhance_quant import _mean
from repro.genomics import PoreModel
from repro.nn.quantize import FakeQuant, quantization_step, quantize_symmetric


# ----------------------------------------------------------------------
# nn/quantize.py
# ----------------------------------------------------------------------

def test_quantization_step_rejects_sub_2bit():
    with pytest.raises(ValueError, match="2 bits"):
        quantization_step(np.array([1.0, -2.0]), bits=1)


def test_quantization_step_positive_for_valid_bits():
    step = quantization_step(np.array([1.0, -2.0]), bits=8)
    assert step == pytest.approx(2.0 / 127)


def test_quantize_symmetric_still_handles_zero_tensor():
    out = quantize_symmetric(np.zeros(5), bits=8)
    assert np.array_equal(out, np.zeros(5))


def test_fakequant_rejects_sub_2bit():
    with pytest.raises(ValueError, match="2 bits"):
        FakeQuant(1)


def test_fakequant_roundtrip_error_bounded_by_step():
    quant = FakeQuant(8)
    x = np.linspace(-1.0, 1.0, 23)
    out = quant(x)
    assert np.all(np.abs(out.data - x) <= (1.0 / 127) + 1e-12)


# ----------------------------------------------------------------------
# crossbar/dac.py and crossbar/adc.py
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"bits": 1},            # 0 signed levels -> divide-by-zero
    {"bits": 0},
    {"v_max": 0.0},
    {"v_max": -1.0},
])
def test_dac_config_rejects_degenerate_parameters(kwargs):
    with pytest.raises(ValueError):
        DACConfig(**kwargs)


def test_dac_minimum_valid_bits_produces_finite_voltages():
    config = DACConfig(bits=2)
    v = apply_dac(np.array([[0.5, -0.25, 1.0]]), config)
    assert np.all(np.isfinite(v))


def test_adc_config_rejects_sub_2bit():
    with pytest.raises(ValueError):
        ADCConfig(bits=1)


def test_adc_minimum_valid_bits_produces_finite_outputs():
    config = ADCConfig(bits=2)
    y = apply_adc(np.array([[0.5, -0.25]]), config, full_scale=1.0)
    assert np.all(np.isfinite(y))


# ----------------------------------------------------------------------
# basecaller/hmm.py
# ----------------------------------------------------------------------

def test_hmm_rejects_nonpositive_samples_per_base():
    with pytest.raises(ValueError, match="samples_per_base"):
        HMMBasecaller(samples_per_base=0.0)


def test_hmm_rejects_degenerate_pore_model():
    flat = PoreModel(k=1, level_mean=np.full(4, 80.0),
                     level_stdv=np.full(4, 1.5))
    with pytest.raises(ValueError, match="degenerate"):
        HMMBasecaller(pore=flat, table_noise=0.0)


# ----------------------------------------------------------------------
# experiments/fig10_enhance_quant.py
# ----------------------------------------------------------------------

def test_fig10_mean_guards_empty_cells():
    assert _mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError, match="empty"):
        _mean([])
