"""Tests for the memristor crossbar substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crossbar import (
    ADCConfig,
    CrossbarBank,
    CrossbarConfig,
    CrossbarTile,
    DACConfig,
    DeviceConfig,
    MeasurementLibrary,
    SetResetProgramming,
    VariationConfig,
    WireConfig,
    WriteReadVerify,
    apply_adc,
    apply_dac,
    apply_stuck_faults,
    apply_write_variation,
    conductance_levels,
    conductance_to_weight,
    dynamic_droop,
    sample_error_prone_map,
    state_to_conductance,
    static_attenuation,
    weight_to_conductance,
)


def clean_config(size=64, **kwargs):
    """A crossbar config with every non-ideality off unless overridden."""
    defaults = dict(
        size=size,
        device=DeviceConfig(nonlinearity=0.0, levels=2 ** 16, read_noise=0.0),
        variation=VariationConfig(0.0, 0.0, 0.0, 0.0),
        wire=WireConfig(0.0, 0.0),
        dac=DACConfig(bits=None),
        adc=ADCConfig(bits=None, range_headroom=1e6),
    )
    defaults.update(kwargs)
    return CrossbarConfig(**defaults)


class TestDevice:
    def test_conductance_window(self):
        device = DeviceConfig()
        assert np.isclose(device.g_min, 1e-6)
        assert np.isclose(device.g_max, 1e-4)

    def test_state_mapping_monotone(self):
        device = DeviceConfig(nonlinearity=3.0)
        states = np.linspace(0, 1, 50)
        g = state_to_conductance(states, device)
        assert np.all(np.diff(g) > 0)
        assert np.isclose(g[0], device.g_min)
        assert np.isclose(g[-1], device.g_max)

    def test_nonlinearity_compresses_top(self):
        linear = state_to_conductance(np.array([0.5]), DeviceConfig(nonlinearity=0.0))
        bowed = state_to_conductance(np.array([0.5]), DeviceConfig(nonlinearity=5.0))
        assert bowed > linear  # exponential model saturates early

    def test_weight_roundtrip_ideal(self, rng):
        device = DeviceConfig(nonlinearity=0.0, levels=2 ** 16)
        weights = rng.standard_normal((8, 8))
        w_max = float(np.abs(weights).max())
        g_pos, g_neg = weight_to_conductance(weights, w_max, device)
        decoded = conductance_to_weight(g_pos, g_neg, w_max, device)
        assert np.abs(decoded - weights).max() < w_max * 1e-3

    def test_quantization_levels_limit_precision(self, rng):
        device = DeviceConfig(levels=4)
        weights = rng.standard_normal((16, 16))
        w_max = float(np.abs(weights).max())
        g_pos, g_neg = weight_to_conductance(weights, w_max, device)
        used = np.unique(np.concatenate([g_pos.ravel(), g_neg.ravel()]))
        assert len(used) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceConfig(hrs_ohm=1e3, lrs_ohm=1e4)
        with pytest.raises(ValueError):
            DeviceConfig(levels=1)
        with pytest.raises(ValueError):
            weight_to_conductance(np.ones((2, 2)), 0.0, DeviceConfig())

    def test_levels_grid(self):
        grid = conductance_levels(DeviceConfig(levels=8))
        assert len(grid) == 8
        assert np.all(np.diff(grid) > 0)


class TestNoise:
    def test_write_variation_statistics(self, rng):
        device = DeviceConfig()
        target = np.full((200, 200), 5e-5)
        noisy = apply_write_variation(target, 0.1, rng, device)
        rel = noisy / target - 1.0
        # Multiplicative (std=rate) + additive window component.
        assert 0.08 < rel.std() < 0.25
        assert abs(rel.mean()) < 0.02  # approximately unbiased

    def test_write_variation_monotone_in_rate(self, rng):
        device = DeviceConfig()
        target = np.full(20_000, 5e-5)
        spreads = [
            apply_write_variation(target, rate,
                                  np.random.default_rng(1), device).std()
            for rate in (0.05, 0.1, 0.25, 0.5)
        ]
        assert spreads == sorted(spreads)

    def test_write_variation_zero_rate(self, rng):
        target = np.full(10, 5e-5)
        assert np.array_equal(
            apply_write_variation(target, 0.0, rng, DeviceConfig()), target)

    def test_write_variation_clipped_to_window(self, rng):
        device = DeviceConfig()
        target = np.full(1000, device.g_max)
        noisy = apply_write_variation(target, 0.5, rng, device)
        assert noisy.max() <= device.g_max

    def test_stuck_faults(self, rng):
        device = DeviceConfig()
        g = np.full((100, 100), 5e-5)
        faulty = apply_stuck_faults(g, 0.05, 0.05, rng, device)
        lrs = (faulty == device.g_max).mean()
        hrs = (faulty == device.g_min).mean()
        assert 0.02 < lrs < 0.08 and 0.02 < hrs < 0.08

    def test_error_prone_map_knowledge(self, rng):
        severity = np.arange(64).reshape(8, 8).astype(float)
        mask = sample_error_prone_map((8, 8), 0.25, rng, severity=severity)
        assert mask.sum() == 16
        assert mask.ravel()[np.argsort(severity.ravel())[-16:]].all()

    def test_error_prone_map_random(self, rng):
        mask = sample_error_prone_map((10, 10), 0.1, rng)
        assert mask.sum() == 10

    def test_variation_config_validation(self):
        with pytest.raises(ValueError):
            VariationConfig(write_variation=-0.1)


class TestWiresConverters:
    def test_attenuation_decreases_with_distance(self):
        att = static_attenuation(64, 64, WireConfig(segment_ohm=2.0),
                                 DeviceConfig())
        assert att[0, 0] == att.max()
        assert att[-1, -1] == att.min()
        assert np.all(att > 0) and np.all(att <= 1)

    def test_larger_array_attenuates_more(self):
        wire, device = WireConfig(segment_ohm=2.0), DeviceConfig()
        small = static_attenuation(64, 64, wire, device)
        large = static_attenuation(256, 256, wire, device)
        assert large.min() < small.min()

    def test_droop_increases_with_current(self):
        wire, device = WireConfig(segment_ohm=1.0), DeviceConfig()
        small = dynamic_droop(np.array([1e-5]), 64, wire, device)
        large = dynamic_droop(np.array([1e-3]), 64, wire, device)
        assert large < small <= 1.0

    def test_dac_quantization(self, rng):
        x = rng.standard_normal((4, 16))
        out = apply_dac(x, DACConfig(bits=4))
        assert len(np.unique(np.round(out / np.abs(x).max() * 7))) <= 15

    def test_dac_ideal_passthrough(self, rng):
        x = rng.standard_normal((2, 8))
        out = apply_dac(x, DACConfig(bits=None))
        assert np.allclose(out, x)

    def test_dac_r_load_sags(self, rng):
        x = np.ones((1, 8))
        out = apply_dac(x, DACConfig(bits=None, r_load=1.0))
        assert np.all(out < x)

    def test_adc_saturates(self):
        y = np.array([[0.5, 5.0, -5.0]])
        out = apply_adc(y, ADCConfig(bits=None), full_scale=1.0)
        assert np.allclose(out, [[0.5, 1.0, -1.0]])

    def test_adc_quantization_step(self):
        y = np.linspace(-1, 1, 100)[None, :]
        out = apply_adc(y, ADCConfig(bits=4, range_headroom=1.0),
                        full_scale=1.0)
        assert len(np.unique(out)) <= 15

    def test_adc_validation(self):
        with pytest.raises(ValueError):
            apply_adc(np.ones((1, 2)), ADCConfig(), full_scale=0.0)
        with pytest.raises(ValueError):
            ADCConfig(range_headroom=0.0)


class TestProgramming:
    def test_wrv_reduces_residual(self):
        scheme = WriteReadVerify(iterations=5, convergence=0.5)
        assert scheme.residual_rate(0.2) == pytest.approx(0.2 * 0.5 ** 5)
        assert SetResetProgramming().residual_rate(0.2) == 0.2

    def test_wrv_costs_more_pulses(self):
        assert (WriteReadVerify(iterations=5).pulses_per_cell()
                > SetResetProgramming().pulses_per_cell())

    def test_wrv_partial_fraction(self, rng):
        scheme = WriteReadVerify(iterations=6, fraction=0.5)
        target = np.full((64, 64), 5e-5)
        achieved = scheme.program(target, 0.3, rng, DeviceConfig())
        rel = np.abs(achieved / target - 1.0)
        # Roughly half the cells should be tightly converged.
        assert (rel < 0.05).mean() > 0.4

    def test_wrv_validation(self):
        with pytest.raises(ValueError):
            WriteReadVerify(iterations=0)
        with pytest.raises(ValueError):
            WriteReadVerify(convergence=1.5)


class TestCrossbarTile:
    def test_ideal_tile_exact(self, rng):
        weights = rng.standard_normal((32, 24)) * 0.5
        tile = CrossbarTile(weights, clean_config(), rng)
        x = rng.standard_normal((5, 32))
        assert np.abs(tile.vmm(x) - x @ weights).max() < 1e-3

    def test_oversized_tile_rejected(self, rng):
        with pytest.raises(ValueError):
            CrossbarTile(np.zeros((65, 10)), clean_config(size=64), rng)

    def test_write_variation_perturbs(self, rng):
        weights = rng.standard_normal((32, 32))
        config = clean_config(variation=VariationConfig(write_variation=0.2))
        tile = CrossbarTile(weights, config, rng)
        assert not np.allclose(tile.effective_weights, weights)
        assert tile.error_severity().max() > 0

    def test_sram_assignment_reduces_error(self, rng):
        weights = rng.standard_normal((64, 64))
        config = clean_config(variation=VariationConfig(write_variation=0.3))
        tile = CrossbarTile(weights, config, rng)
        x = rng.standard_normal((8, 64))
        error_before = np.abs(tile.vmm(x) - x @ weights).mean()
        moved = tile.assign_sram(0.5, use_knowledge=True)
        assert moved == 2048
        error_after = np.abs(tile.vmm(x) - x @ weights).mean()
        assert error_after < error_before

    def test_sram_update(self, rng):
        weights = rng.standard_normal((16, 16))
        tile = CrossbarTile(weights, clean_config(), rng)
        tile.assign_sram(0.25, use_knowledge=False)
        new = weights + 1.0
        tile.update_sram_weights(new)
        assert np.allclose(tile.ideal_weights[tile.sram_mask],
                           new[tile.sram_mask])
        assert np.allclose(tile.ideal_weights[~tile.sram_mask],
                           weights[~tile.sram_mask])

    def test_reprogram_redraws_noise(self, rng):
        weights = rng.standard_normal((16, 16))
        config = clean_config(variation=VariationConfig(write_variation=0.2))
        tile = CrossbarTile(weights, config, rng)
        first = tile.effective_weights.copy()
        tile.reprogram()
        assert not np.allclose(first, tile.effective_weights)

    def test_input_width_check(self, rng):
        tile = CrossbarTile(np.zeros((8, 8)), clean_config(), rng)
        with pytest.raises(ValueError):
            tile.vmm(np.zeros((1, 9)))


class TestCrossbarBank:
    def test_tiling_geometry(self, rng):
        bank = CrossbarBank(rng.standard_normal((130, 70)),
                            clean_config(size=64), rng)
        assert bank.num_tiles == 3 * 2

    def test_ideal_bank_exact(self, rng):
        weights = rng.standard_normal((130, 70)) * 0.3
        bank = CrossbarBank(weights, clean_config(size=64), rng)
        x = rng.standard_normal((4, 130))
        rel = np.abs(bank.vmm(x) - x @ weights).max() / np.abs(x @ weights).max()
        assert rel < 1e-2

    def test_effective_matrix_shape(self, rng):
        weights = rng.standard_normal((100, 50))
        bank = CrossbarBank(weights, clean_config(size=64), rng)
        assert bank.effective_matrix().shape == (100, 50)

    @given(st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_bank_any_shape(self, rows10, cols10):
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((rows10 * 10, cols10 * 10))
        bank = CrossbarBank(weights, clean_config(size=16), rng)
        x = rng.standard_normal((2, rows10 * 10))
        assert bank.vmm(x).shape == (2, cols10 * 10)

    def test_larger_tiles_more_error_under_wires(self, rng):
        """The paper's observation 5: bigger crossbars, bigger loss."""
        weights = rng.standard_normal((256, 256)) * 0.2
        x = rng.standard_normal((8, 256))
        wire = WireConfig(segment_ohm=3.0)
        errors = {}
        for size in (64, 256):
            config = clean_config(size=size, wire=wire)
            bank = CrossbarBank(weights, config, np.random.default_rng(1))
            errors[size] = np.abs(bank.vmm(x) - x @ weights).mean()
        assert errors[256] > errors[64]


class TestMeasurementLibrary:
    def test_instances_differ(self, rng):
        weights = rng.standard_normal((32, 32))
        config = clean_config(size=32,
                              variation=VariationConfig(write_variation=0.1))
        lib = MeasurementLibrary(weights, config, num_instances=4, seed=2)
        x = rng.standard_normal((1, 32))
        outputs = [lib.query(x, instance=i) for i in range(4)]
        assert not np.allclose(outputs[0], outputs[1])

    def test_random_query_draws(self, rng):
        weights = rng.standard_normal((16, 16))
        config = clean_config(size=16,
                              variation=VariationConfig(write_variation=0.2))
        lib = MeasurementLibrary(weights, config, num_instances=8, seed=3)
        x = rng.standard_normal((1, 16))
        draws = {lib.query(x).tobytes() for _ in range(20)}
        assert len(draws) > 1

    def test_error_severity_available(self, rng):
        weights = rng.standard_normal((16, 16))
        config = clean_config(size=16,
                              variation=VariationConfig(write_variation=0.2))
        lib = MeasurementLibrary(weights, config, num_instances=2, seed=4)
        assert lib.error_severity().shape == (16, 16)
        assert len(lib) == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MeasurementLibrary(np.zeros((4, 4)), clean_config(size=4),
                               num_instances=0)
