"""Tests for the Swordfish façade and System Evaluator."""

import numpy as np
import pytest

from repro.arch import ArchConfig
from repro.core import (
    EnhanceConfig,
    Swordfish,
    SwordfishConfig,
    SystemEvaluator,
)
from tests.conftest import TINY_CONFIG

FAST_ENHANCE = EnhanceConfig(retrain_epochs=1, online_epochs=1,
                             num_chunks=32)


@pytest.fixture()
def framework(tiny_trained, monkeypatch):
    """A Swordfish instance whose baseline is the tiny trained model."""
    import repro.core.framework as fw

    def fake_default_model(config=None):
        from repro.basecaller import BonitoModel
        clone = BonitoModel(TINY_CONFIG)
        clone.load_state_dict(tiny_trained.state_dict())
        clone.eval()
        return clone

    monkeypatch.setattr(fw, "default_model", fake_default_model)
    return Swordfish()


class TestSwordfishConfig:
    def test_validation(self):
        with pytest.raises(KeyError):
            SwordfishConfig(quantization="FPP 3-3")
        with pytest.raises(ValueError):
            SwordfishConfig(bundle="bogus")
        with pytest.raises(ValueError):
            SwordfishConfig(technique="bogus")

    def test_defaults_are_papers(self):
        config = SwordfishConfig()
        assert config.quantization == "FPP 16-16"
        assert config.crossbar_size == 64
        assert config.write_variation == 0.10
        assert config.datasets == ("D1", "D2", "D3", "D4")


class TestSwordfishRun:
    def test_accuracy_only(self, framework):
        config = SwordfishConfig(
            technique="none", bundle="write_only", datasets=("D1",),
            reads_per_dataset=2, model=TINY_CONFIG, enhance=FAST_ENHANCE,
        )
        accuracy = framework.accuracy_only(config)
        assert set(accuracy) == {"D1"}
        assert 0.0 <= accuracy["D1"] <= 100.0

    def test_full_run_metrics(self, framework):
        config = SwordfishConfig(
            technique="none", bundle="write_only", datasets=("D1",),
            reads_per_dataset=2, model=TINY_CONFIG, enhance=FAST_ENHANCE,
        )
        metrics = framework.run(config)
        assert metrics.throughput.kbp_per_second > 0
        assert metrics.gpu_baseline_kbps > 0
        assert metrics.area.total_mm2 > 0
        assert metrics.energy.total_pj > 0
        assert metrics.speedup_vs_gpu > 1.0  # no mitigation → big speedup

    def test_quantization_applied(self, framework):
        config = SwordfishConfig(
            quantization="FPP 4-4", technique="none", bundle="ideal",
            datasets=("D1",), reads_per_dataset=2, model=TINY_CONFIG,
            enhance=FAST_ENHANCE,
        )
        model = framework.prepared_model(config)
        # 4-bit weights → few distinct values per tensor.
        values = np.unique(model.decoder.weight.data)
        assert len(values) <= 15


class TestSystemEvaluator:
    def test_variant_selection(self):
        from repro.core.enhance import EnhancedDesign

        class Stub:
            pass

        def design(technique, sram, wrv):
            d = EnhancedDesign(technique=technique, deployed=Stub(),
                               sram_fraction=sram, uses_wrv=wrv)
            return d

        pick = SystemEvaluator._variant_for
        assert pick(design("none", 0.0, False)) == "ideal"
        assert pick(design("rvw", 0.0, True)) == "rvw"
        assert pick(design("rsa_kd", 0.05, False)) == "rsa_kd"
        assert pick(design("all", 0.05, True)) == "rsa_kd"

    def test_throughput_variant_ordering(self, tiny_model):
        evaluator = SystemEvaluator(arch=ArchConfig())
        estimates = {
            variant: evaluator.throughput(tiny_model, variant, 64)
            for variant in ("ideal", "rvw", "rsa", "rsa_kd")
        }
        assert (estimates["ideal"].kbp_per_second
                > estimates["rsa_kd"].kbp_per_second
                > estimates["rsa"].kbp_per_second
                > estimates["rvw"].kbp_per_second)

    def test_fig14_paper_shape(self):
        """The headline Fig. 14 ratios: ideal >> rsa_kd > rsa > 1 > rvw."""
        from repro.basecaller import BonitoModel
        from repro.basecaller.model import BONITO_PAPER_CONFIG
        model = BonitoModel(BONITO_PAPER_CONFIG)
        evaluator = SystemEvaluator()
        gpu = evaluator.gpu_baseline(model)
        ratio = {
            v: evaluator.throughput(model, v, 64).kbp_per_second / gpu
            for v in ("ideal", "rvw", "rsa", "rsa_kd")
        }
        assert 200 < ratio["ideal"] < 900   # paper: 413.6x
        assert 10 < ratio["rsa_kd"] < 60    # paper: 25.7x
        assert 2 < ratio["rsa"] < 12        # paper: 5.24x
        assert ratio["rvw"] < 1.5           # paper: 0.7x

    def test_area_grows_with_sram(self, tiny_model):
        evaluator = SystemEvaluator()
        areas = [evaluator.area(tiny_model, 64, sram_fraction=f).total_mm2
                 for f in (0.0, 0.01, 0.05, 0.10)]
        assert areas == sorted(areas)

    def test_gpu_baseline_positive(self, tiny_model):
        assert SystemEvaluator().gpu_baseline(tiny_model) > 0
