"""Tests for ``repro.serve`` — basecalling-as-a-service.

The load-bearing property is the **determinism contract**: a served
basecall must be bitwise-identical to the offline ``deploy()`` +
``basecall_signal`` result for the same read, seed, and bundle —
independent of request order, batching, concurrency, and cache state.
Everything else here (protocol validation, fairness, backpressure,
drain ordering) exists so that contract survives a hostile network.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.basecaller import BonitoModel
from repro.basecaller.decode import basecall_signal
from repro.core import deploy
from repro.core.nonidealities import get_bundle
from repro.nn import is_grad_enabled, no_grad
from repro.observability import get_metrics
from repro.runtime import ResultCache
from repro.serve import (
    BasecallEngine,
    BasecallServer,
    CoalescingBatcher,
    EngineConfig,
    PendingRead,
    ProtocolError,
    ProtocolLimits,
    ServeClient,
    ServeClientError,
    ServeConfig,
    encode_bases,
    error_response,
    parse_request,
)
from repro.serve.cli import DEMO_CONFIG, build_parser
from repro.serve.protocol import check_total_samples

RNG = np.random.default_rng(1234)
#: Deterministic workload shared by identity tests.
SIGNALS = [RNG.normal(size=n).astype(np.float64)
           for n in (96, 160, 192, 128, 224, 96, 144, 176)]


def offline_basecall(signal: np.ndarray,
                     config: EngineConfig | None = None) -> str:
    """The reference: a fresh offline deployment's first basecall."""
    config = config or EngineConfig()
    model = BonitoModel(DEMO_CONFIG)
    model.eval()
    deploy(model, get_bundle(config.bundle),
           crossbar_size=config.crossbar_size,
           write_variation=config.write_variation,
           use_wrv=config.use_wrv, seed=config.seed)
    codes = basecall_signal(model, signal, beam_width=config.beam_width)
    return encode_bases(codes)


@pytest.fixture(scope="module")
def offline_refs():
    return [offline_basecall(signal) for signal in SIGNALS]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_basecall(self):
        request = parse_request(
            b'{"op":"basecall","id":"r1","signal":[1.0,2.5,-3]}')
        assert request.op == "basecall"
        assert request.read_id == "r1"
        np.testing.assert_array_equal(request.signal, [1.0, 2.5, -3.0])

    def test_parse_chunk_carries_last_flag(self):
        request = parse_request(
            b'{"op":"chunk","id":"r1","signal":[1],"last":true}')
        assert request.op == "chunk" and request.last is True
        request = parse_request(b'{"op":"chunk","id":"r1","signal":[1]}')
        assert request.last is False

    def test_parse_control_ops_need_no_id(self):
        assert parse_request(b'{"op":"ping"}').op == "ping"
        assert parse_request(b'{"op":"metrics"}').op == "metrics"

    @pytest.mark.parametrize("line,code", [
        (b"not json", "malformed"),
        (b'[1,2,3]', "malformed"),
        (b'{"op":"frobnicate"}', "malformed"),
        (b'{"op":"basecall","signal":[1]}', "malformed"),       # no id
        (b'{"op":"basecall","id":"","signal":[1]}', "malformed"),
        (b'{"op":"basecall","id":"r","signal":"abc"}', "malformed"),
        (b'{"op":"basecall","id":"r","signal":[1,"x"]}', "malformed"),
        (b'{"op":"basecall","id":"r","signal":[1,null]}', "malformed"),
        (b'{"op":"basecall","id":"r","signal":[NaN]}', "malformed"),
        (b'{"op":"chunk","id":"r","signal":[1],"last":1}', "malformed"),
        (b'\xff\xfe{"op":"ping"}', "malformed"),
    ])
    def test_rejects_malformed(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == code

    def test_oversized_signal_and_line(self):
        limits = ProtocolLimits(max_signal_samples=4, max_line_bytes=64)
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(
                b'{"op":"basecall","id":"r","signal":[1,2,3,4,5]}', limits)
        assert excinfo.value.code == "oversized"
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op":"basecall","id":"r","signal":['
                          + b"1," * 40 + b"1]}", limits)
        assert excinfo.value.code == "oversized"

    def test_read_id_length_bound(self):
        limits = ProtocolLimits(max_id_chars=8)
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(json.dumps(
                {"op": "basecall", "id": "x" * 9, "signal": [1]}), limits)
        assert excinfo.value.code == "malformed"

    def test_check_total_samples(self):
        limits = ProtocolLimits(max_signal_samples=10)
        check_total_samples(10, "r", limits)
        with pytest.raises(ProtocolError) as excinfo:
            check_total_samples(11, "r", limits)
        assert excinfo.value.code == "oversized"

    def test_encode_bases(self):
        assert encode_bases(np.array([0, 1, 2, 3, 0])) == "ACGTA"
        assert encode_bases(np.array([], dtype=np.int8)) == ""

    def test_error_response_validates_code(self):
        response = error_response("r1", "timeout", "too slow")
        assert response["status"] == "error"
        assert response["error"]["code"] == "timeout"
        with pytest.raises(ValueError):
            error_response("r1", "nonsense", "boom")

    def test_protocol_error_to_response(self):
        exc = ProtocolError("empty_read", "nothing there", read_id="r9")
        response = exc.to_response()
        assert response == {"id": "r9", "status": "error",
                            "error": {"code": "empty_read",
                                      "message": "nothing there"}}
        with pytest.raises(ValueError):
            ProtocolError("bogus", "nope")


# ----------------------------------------------------------------------
# Batcher (DRR fairness, bounds, cancellation)
# ----------------------------------------------------------------------
def _pending(client: str, read: str, cost: int,
             loop: asyncio.AbstractEventLoop) -> PendingRead:
    return PendingRead(client_id=client, read_id=read,
                       signal=np.zeros(cost), future=loop.create_future(),
                       enqueued_perf=0.0)


class TestBatcher:
    def test_drr_interleaves_equal_cost_clients(self):
        async def scenario():
            batcher = CoalescingBatcher(max_batch_reads=8,
                                        quantum_samples=100)
            loop = asyncio.get_running_loop()
            for i in range(3):
                await batcher.put(_pending("a", f"a{i}", 100, loop))
            for i in range(3):
                await batcher.put(_pending("b", f"b{i}", 100, loop))
            return [p.read_id for p in batcher.take_batch()]

        order = asyncio.run(scenario())
        # One quantum per visit -> strict alternation, arrival order
        # within each client.
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_large_read_is_delayed_not_starved(self):
        async def scenario():
            batcher = CoalescingBatcher(max_batch_reads=8,
                                        quantum_samples=100)
            loop = asyncio.get_running_loop()
            await batcher.put(_pending("big", "huge", 1000, loop))
            for i in range(2):
                await batcher.put(_pending("small", f"s{i}", 50, loop))
            first = [p.read_id for p in batcher.take_batch()]
            second = [p.read_id for p in batcher.take_batch()]
            return first, second

        first, second = asyncio.run(scenario())
        # The cheap reads go out while the big one banks credit...
        assert first == ["s0", "s1"]
        # ...and the big one dispatches on the next batch, not never.
        assert second == ["huge"]

    def test_sample_budget_bounds_batch(self):
        async def scenario():
            batcher = CoalescingBatcher(max_batch_reads=8,
                                        max_batch_samples=250,
                                        quantum_samples=1000)
            loop = asyncio.get_running_loop()
            for i in range(4):
                await batcher.put(_pending("a", f"a{i}", 100, loop))
            return ([p.read_id for p in batcher.take_batch()],
                    [p.read_id for p in batcher.take_batch()])

        first, second = asyncio.run(scenario())
        assert first == ["a0", "a1"]          # 300 would exceed 250
        assert second == ["a2", "a3"]

    def test_put_blocks_at_capacity_until_dispatch(self):
        async def scenario():
            batcher = CoalescingBatcher(max_pending_reads=2,
                                        max_batch_reads=1)
            loop = asyncio.get_running_loop()
            await batcher.put(_pending("a", "a0", 1, loop))
            await batcher.put(_pending("a", "a1", 1, loop))
            blocked = asyncio.ensure_future(
                batcher.put(_pending("a", "a2", 1, loop)))
            await asyncio.sleep(0.01)
            assert not blocked.done()          # bound hit: producer waits
            taken = batcher.take_batch()
            await asyncio.wait_for(blocked, timeout=1.0)
            return [p.read_id for p in taken], batcher.pending

        taken, pending = asyncio.run(scenario())
        assert taken == ["a0"]
        assert pending == 2                    # a1 + the unblocked a2

    def test_cancelled_reads_are_pruned_silently(self):
        async def scenario():
            batcher = CoalescingBatcher()
            loop = asyncio.get_running_loop()
            keep = _pending("b", "keep", 1, loop)
            for i in range(3):
                await batcher.put(_pending("a", f"a{i}", 1, loop))
            await batcher.put(keep)
            assert batcher.cancel_client("a") == 3
            assert batcher.cancel_client("ghost") == 0
            return [p.read_id for p in batcher.take_batch()]

        assert asyncio.run(scenario()) == ["keep"]


# ----------------------------------------------------------------------
# Engine: determinism contract + cache
# ----------------------------------------------------------------------
class TestEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return BasecallEngine(BonitoModel(DEMO_CONFIG))

    def test_bitwise_identity_with_offline_deploy(self, engine,
                                                  offline_refs):
        result = engine.basecall(SIGNALS[0])
        assert result.bases == offline_refs[0]
        assert result.cached is False
        assert result.frames == len(SIGNALS[0]) // 2

    def test_rng_epoch_makes_order_irrelevant(self, engine, offline_refs):
        # Serve b, a, a, b in a weird order: every answer must equal the
        # fresh-deployment reference regardless of what ran before.
        sequence = [1, 0, 0, 1, 2, 1]
        for index in sequence:
            assert engine.basecall(SIGNALS[index]).bases == \
                offline_refs[index]

    def test_engines_are_interchangeable(self, engine, offline_refs):
        other = BasecallEngine(BonitoModel(DEMO_CONFIG))
        assert other.basecall(SIGNALS[3]).bases == \
            engine.basecall(SIGNALS[3]).bases == offline_refs[3]

    def test_rejects_empty_and_2d_signals(self, engine):
        with pytest.raises(ValueError):
            engine.basecall(np.empty(0))
        with pytest.raises(ValueError):
            engine.basecall(np.zeros((2, 8)))

    def test_cache_short_circuits_duplicates(self, tmp_path, offline_refs):
        cache = ResultCache(tmp_path / "serve-cache")
        engine = BasecallEngine(BonitoModel(DEMO_CONFIG), cache=cache)
        first = engine.basecall(SIGNALS[2])
        second = engine.basecall(SIGNALS[2])
        assert first.cached is False and second.cached is True
        assert first.bases == second.bases == offline_refs[2]
        assert first.frames == second.frames
        # A freshly built engine on the same design point hits the same
        # entries — the key is content-addressed, not instance-bound.
        warm = BasecallEngine(BonitoModel(DEMO_CONFIG), cache=cache)
        assert warm.basecall(SIGNALS[2]).cached is True

    def test_cache_key_separates_design_points(self, tmp_path):
        cache = ResultCache(tmp_path / "serve-cache")
        a = BasecallEngine(BonitoModel(DEMO_CONFIG), cache=cache)
        b = BasecallEngine(BonitoModel(DEMO_CONFIG),
                           EngineConfig(seed=9), cache=cache)
        assert a.cache_key(SIGNALS[0]) != b.cache_key(SIGNALS[0])
        a.basecall(SIGNALS[0])
        assert b.basecall(SIGNALS[0]).cached is False


# ----------------------------------------------------------------------
# Shared-model concurrency (satellite: concurrent-safety audit)
# ----------------------------------------------------------------------
class TestSharedModelConcurrency:
    def test_rng_snapshot_restore_roundtrip(self):
        model = BonitoModel(DEMO_CONFIG)
        model.eval()
        deployed = deploy(model, get_bundle("write_only"), seed=0)
        snapshot = deployed.rng_snapshot()
        first = encode_bases(basecall_signal(model, SIGNALS[0]))
        deployed.rng_restore(snapshot)
        replay = encode_bases(basecall_signal(model, SIGNALS[0]))
        assert replay == first

    def test_rng_restore_rejects_wrong_shape(self):
        model = BonitoModel(DEMO_CONFIG)
        model.eval()
        deployed = deploy(model, get_bundle("write_only"), seed=0)
        with pytest.raises(ValueError):
            deployed.rng_restore(deployed.rng_snapshot()[:-1])

    def test_locked_shared_model_concurrent_equals_serial(self,
                                                          offline_refs):
        """One DeployedModel shared by threads under its lock: every
        thread's answer is bitwise the serial (and offline) one."""
        model = BonitoModel(DEMO_CONFIG)
        model.eval()
        deployed = deploy(model, get_bundle("write_only"), seed=0)
        epoch = deployed.rng_snapshot()

        results: dict[int, str] = {}
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                with deployed.lock:
                    deployed.rng_restore(epoch)
                    codes = basecall_signal(model, SIGNALS[index])
                results[index] = encode_bases(codes)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(SIGNALS))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == {i: offline_refs[i] for i in range(len(SIGNALS))}

    def test_no_grad_is_thread_local(self):
        observed: dict[str, bool] = {}
        entered = threading.Event()
        release = threading.Event()

        def inside() -> None:
            with no_grad():
                entered.set()
                release.wait(timeout=5)
                observed["inside"] = is_grad_enabled()

        def outside() -> None:
            entered.wait(timeout=5)
            observed["outside"] = is_grad_enabled()
            release.set()

        threads = [threading.Thread(target=inside),
                   threading.Thread(target=outside)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One thread's no_grad must not leak into another's autograd.
        assert observed == {"inside": False, "outside": True}


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------
class Harness:
    """A BasecallServer on its own event-loop thread, for sync tests."""

    def __init__(self, engine_config: EngineConfig | None = None,
                 serve_config: ServeConfig | None = None,
                 cache: ResultCache | None = None):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self.server = BasecallServer(BonitoModel(DEMO_CONFIG),
                                     engine_config, serve_config,
                                     cache=cache)
        self.run(self.server.start(), timeout=300)
        self.port = self.server.port
        self._closed = False

    def run(self, coro, timeout: float = 60):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout)

    def call(self, fn, timeout: float = 30):
        """Run a sync callable on the loop thread (safe state access)."""
        async def wrapped():
            return fn()
        return self.run(wrapped(), timeout=timeout)

    def client(self, timeout: float = 60) -> ServeClient:
        return ServeClient("127.0.0.1", self.port, timeout=timeout)

    def close(self, drain: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self.run(self.server.shutdown(drain=drain), timeout=120)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture(scope="class")
def harness():
    server = Harness(serve_config=ServeConfig(workers=2))
    yield server
    server.close()


class TestServerIntegration:
    def test_roundtrip_bitwise_identity(self, harness, offline_refs):
        with harness.client() as client:
            for index in (2, 0, 1, 0):
                response = client.basecall(f"r{index}", SIGNALS[index])
                assert response["status"] == "ok"
                assert response["bases"] == offline_refs[index]
                assert response["latency_ms"] >= response["compute_ms"] >= 0

    def test_chunked_equals_whole_read(self, harness):
        with harness.client() as client:
            whole = client.basecall("whole", SIGNALS[4])
            client.submit_chunked("pieces", SIGNALS[4], chunk_samples=64)
            chunked = client.recv()
        assert chunked["status"] == "ok"
        assert chunked["bases"] == whole["bases"]
        assert chunked["frames"] == whole["frames"]

    def test_eight_concurrent_clients_bitwise_identity(self, harness,
                                                       offline_refs):
        """The acceptance bar: >= 8 concurrent clients, every response
        bitwise-identical to the offline reference — concurrency and
        cross-request batching must not perturb a single output."""
        results: dict[tuple[int, int], str] = {}
        errors: list[Exception] = []

        def client_worker(worker: int) -> None:
            try:
                with harness.client() as client:
                    # Each client sends every signal, pipelined, so
                    # batches mix clients and duplicate reads.
                    for index in range(len(SIGNALS)):
                        client.submit(f"w{worker}-r{index}",
                                      SIGNALS[index])
                    for index in range(len(SIGNALS)):
                        response = client.recv()
                        assert response["status"] == "ok", response
                        results[(worker, index)] = response["bases"]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client_worker, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors
        assert len(results) == 8 * len(SIGNALS)
        for (worker, index), bases in results.items():
            assert bases == offline_refs[index], (worker, index)

    def test_responses_keep_submission_order(self, harness):
        with harness.client() as client:
            for index in range(6):
                client.submit(f"ordered-{index}", SIGNALS[index % 3])
            received = [client.recv()["id"] for _ in range(6)]
        assert received == [f"ordered-{index}" for index in range(6)]

    def test_ping_and_metrics_ops(self, harness):
        with harness.client() as client:
            assert client.ping()["op"] == "pong"
            client.basecall("metrics-probe", SIGNALS[0])
            text = client.metrics()
        assert "# TYPE swordfish_serve_requests_total counter" in text
        assert "# TYPE swordfish_serve_latency_ms summary" in text
        assert 'swordfish_serve_latency_ms{quantile="0.5"}' in text
        assert "swordfish_serve_batch_occupancy" in text

    def test_malformed_line_keeps_connection_alive(self, harness):
        with harness.client() as client:
            client._sock.sendall(b"this is not json\n")
            response = client.recv()
            assert response["status"] == "error"
            assert response["error"]["code"] == "malformed"
            follow_up = client.basecall("after-garbage", SIGNALS[0])
        assert follow_up["status"] == "ok"

    def test_zero_length_read_is_structured_error(self, harness):
        with harness.client() as client:
            response = client.basecall("empty", np.empty(0))
            assert response["error"]["code"] == "empty_read"
            # Chunked assembly of nothing hits the same check.
            client.submit_chunked("empty-chunks", np.empty(0))
            response = client.recv()
        assert response["error"]["code"] == "empty_read"

    def test_unknown_op_is_structured_error(self, harness):
        with harness.client() as client:
            client.send({"op": "frobnicate", "id": "x"})
            response = client.recv()
        assert response["error"]["code"] == "malformed"

    def test_disconnect_mid_stream_leaves_server_healthy(self, harness,
                                                         offline_refs):
        rude = harness.client()
        for index in range(len(SIGNALS)):
            rude.submit(f"doomed-{index}", SIGNALS[index])
        rude.abort()
        # The server cancels the doomed work and keeps serving others.
        with harness.client() as client:
            response = client.basecall("survivor", SIGNALS[1])
        assert response["status"] == "ok"
        assert response["bases"] == offline_refs[1]


class TestOversizedRequests:
    @pytest.fixture(scope="class")
    def small_harness(self):
        config = ServeConfig(
            workers=1,
            limits=ProtocolLimits(max_signal_samples=64,
                                  max_line_bytes=4096))
        server = Harness(serve_config=config)
        yield server
        server.close()

    def test_oversized_signal_structured_error(self, small_harness):
        with small_harness.client() as client:
            response = client.basecall("big", np.zeros(65))
            assert response["status"] == "error"
            assert response["error"]["code"] == "oversized"
            # The connection survives a rejected request.
            ok = client.basecall("small", SIGNALS[0][:48])
        assert ok["status"] == "ok"

    def test_chunk_assembly_enforces_total_bound(self, small_harness):
        with small_harness.client() as client:
            client.submit_chunked("slow-boil", np.zeros(100),
                                  chunk_samples=40)
            response = client.recv()
            assert response["error"]["code"] == "oversized"
            ok = client.basecall("after", SIGNALS[0][:48])
        assert ok["status"] == "ok"

    def test_oversized_line_answers_then_hangs_up(self, small_harness):
        client = small_harness.client()
        try:
            client._sock.sendall(b"x" * 8192 + b"\n")
            response = client.recv()
            assert response["error"]["code"] == "oversized"
            with pytest.raises(ServeClientError):
                client.recv()                  # framing lost: EOF
        finally:
            client.close()


class TestBackpressureAndTimeouts:
    def test_slow_consumer_is_bounded_by_inflight_cap(self):
        config = ServeConfig(workers=1, max_client_inflight=1,
                             max_pending_reads=4)
        server = Harness(serve_config=config)
        try:
            with server.client() as client:
                for index in range(5):
                    client.submit(f"bp-{index}", SIGNALS[index % 2])
                # With a cap of one in-flight read per client, the
                # reader must not run ahead: at any instant at most one
                # of this client's reads is queued or computing.
                for _ in range(10):
                    assert server.call(
                        lambda: server.server.batcher.pending) <= 1
                    time.sleep(0.01)
                received = [client.recv() for _ in range(5)]
            assert [r["id"] for r in received] == \
                [f"bp-{index}" for index in range(5)]
            assert all(r["status"] == "ok" for r in received)
        finally:
            server.close()

    def test_request_timeout_returns_structured_error(self):
        config = ServeConfig(workers=1, request_timeout_s=0.2)
        server = Harness(serve_config=config)
        try:
            def slow_wrap():
                for engine in list(server.server._engines.queue):
                    original = engine.basecall_batch

                    def sleepy(signals, _original=original):
                        time.sleep(1.0)
                        return _original(signals)

                    engine.basecall_batch = sleepy
            server.call(slow_wrap)
            with server.client() as client:
                response = client.basecall("tardy", SIGNALS[0])
            assert response["status"] == "error"
            assert response["error"]["code"] == "timeout"
        finally:
            server.close()


class TestGracefulDrain:
    def test_drain_flushes_accepted_work_in_order(self, offline_refs):
        server = Harness(serve_config=ServeConfig(workers=2))
        baseline = server.call(
            lambda: get_metrics().counter("serve.requests").value)
        client = server.client()
        try:
            for index in range(5):
                client.submit(f"drain-{index}", SIGNALS[index])
            # Wait until the server has *accepted* all five...
            deadline = time.time() + 30
            while server.call(
                    lambda: get_metrics().counter(
                        "serve.requests").value) < baseline + 5:
                assert time.time() < deadline
                time.sleep(0.01)
            # ...then start draining and race in one more request.
            server.call(lambda: setattr(server.server, "_draining", True))
            client.submit("too-late", SIGNALS[0])
            server.close(drain=True)

            # Every accepted read completes, in submission order, with
            # the exact offline bases; the late one gets a structured
            # draining error; then EOF.
            for index in range(5):
                response = client.recv()
                assert response["id"] == f"drain-{index}"
                assert response["status"] == "ok"
                assert response["bases"] == offline_refs[index]
            late = client.recv()
            assert late["error"]["code"] == "draining"
            with pytest.raises(ServeClientError):
                client.recv()
            # And the listener is gone.
            with pytest.raises(ServeClientError):
                ServeClient("127.0.0.1", server.port, timeout=2)
        finally:
            client.close()
            server.close()


class TestServedCache:
    def test_duplicate_reads_short_circuit_bitwise(self, tmp_path,
                                                   offline_refs):
        cache = ResultCache(tmp_path / "served-cache")
        server = Harness(serve_config=ServeConfig(workers=2), cache=cache)
        try:
            with server.client() as client:
                cold = client.basecall("dup", SIGNALS[5])
                warm = client.basecall("dup-again", SIGNALS[5])
            assert cold["cached"] is False
            assert warm["cached"] is True
            assert cold["bases"] == warm["bases"] == offline_refs[5]
        finally:
            server.close()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_parser_demo_defaults(self):
        args = build_parser().parse_args(["--demo"])
        assert args.demo is True
        assert args.port == 0
        assert args.bundle == "write_only"

    def test_parser_requires_a_model_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_checkpoint_roundtrip_builds_identical_model(self, tmp_path):
        from repro.nn.serialize import save_checkpoint
        from repro.serve.cli import build_model

        model = BonitoModel(DEMO_CONFIG)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        args = build_parser().parse_args(
            ["--checkpoint", str(path), "--conv-channels", "8,16",
             "--lstm-hidden", "16", "--num-lstm-layers", "2",
             "--model-seed", "7"])
        loaded = build_model(args)
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(loaded.state_dict()[key], value)


# ----------------------------------------------------------------------
# ServeClient bounded retry
# ----------------------------------------------------------------------

class _ScriptedServer:
    """Minimal NDJSON server whose behavior is scripted per connection.

    Behaviors, consumed in accept order (the last one repeats):

    - ``"ok"``       — answer every request with ``{"status": "ok"}``.
    - ``"draining"`` — answer every request with the server's drain
      refusal (the exact shape ``BasecallServer`` emits).
    - ``"reset"``    — hard-close the connection immediately (RST via
      ``SO_LINGER 0``), before any request is read.
    - ``"other"``    — answer with a non-retryable error response.
    """

    def __init__(self, behaviors: list[str]):
        import socket

        self.behaviors = list(behaviors)
        self.connections = 0
        self.requests: list[dict] = []
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            index = min(self.connections, len(self.behaviors) - 1)
            behavior = self.behaviors[index]
            self.connections += 1
            threading.Thread(target=self._handle, args=(conn, behavior),
                             daemon=True).start()

    def _handle(self, conn, behavior: str) -> None:
        import socket
        import struct

        try:
            if behavior == "reset":
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
                return
            fh = conn.makefile("rb")
            for line in fh:
                request = json.loads(line)
                self.requests.append(request)
                if behavior == "draining":
                    reply = error_response(request.get("id"), "draining",
                                           "server is shutting down")
                elif behavior == "other":
                    reply = error_response(request.get("id"), "malformed",
                                           "bad request")
                else:
                    reply = {"status": "ok", "op": request.get("op"),
                             "id": request.get("id")}
                conn.sendall((json.dumps(reply) + "\n").encode("ascii"))
        except (OSError, ValueError):
            pass
        finally:
            conn.close()

    def close(self) -> None:
        self._listener.close()


class TestServeClientRetry:
    """Satellite: bounded, deterministic retry in :class:`ServeClient`."""

    def _client(self, server: _ScriptedServer, retries: int = 0,
                backoff: float = 0.0) -> ServeClient:
        return ServeClient("127.0.0.1", server.port, timeout=5.0,
                           retries=retries, retry_backoff=backoff)

    def test_retries_through_draining_then_succeeds(self):
        server = _ScriptedServer(["draining", "ok"])
        try:
            with self._client(server, retries=2) as client:
                response = client.ping()
            assert response["status"] == "ok"
            # The draining refusal forced a reconnect: two connections,
            # one request served on each.
            assert server.connections == 2
        finally:
            server.close()

    def test_retries_through_connection_reset_then_succeeds(self):
        server = _ScriptedServer(["reset", "reset", "ok"])
        try:
            with self._client(server, retries=3) as client:
                response = client.ping()
            assert response["status"] == "ok"
            assert server.connections == 3
        finally:
            server.close()

    def test_backoff_schedule_is_deterministic(self):
        server = _ScriptedServer(["reset", "reset", "ok"])
        try:
            sleeps: list[float] = []
            import repro.serve.client as client_mod
            original = client_mod.time.sleep

            class _Clock:
                def __getattr__(self, name):
                    return getattr(time, name)

                @staticmethod
                def sleep(delay):
                    sleeps.append(delay)
                    original(0)

            client_mod.time, saved = _Clock(), client_mod.time
            try:
                with self._client(server, retries=3,
                                  backoff=0.25) as client:
                    assert client.ping()["status"] == "ok"
            finally:
                client_mod.time = saved
            # retry n sleeps retry_backoff * 2**(n-1): 0.25, 0.5, ...
            assert sleeps == [0.25, 0.5]
        finally:
            server.close()

    def test_zero_retries_returns_draining_response_untouched(self):
        server = _ScriptedServer(["draining"])
        try:
            with self._client(server, retries=0) as client:
                response = client.ping()
            assert response["status"] == "error"
            assert response["error"]["code"] == "draining"
            assert server.connections == 1
        finally:
            server.close()

    def test_zero_retries_raises_fast_on_reset(self):
        server = _ScriptedServer(["reset"])
        try:
            client = self._client(server, retries=0)
            with pytest.raises(ServeClientError,
                               match=r"after 1 attempt\(s\)"):
                client.ping()
            client.abort()
        finally:
            server.close()

    def test_exhausted_retries_raise_with_attempt_count(self):
        server = _ScriptedServer(["reset"])
        try:
            client = self._client(server, retries=2)
            with pytest.raises(ServeClientError,
                               match=r"after 3 attempt\(s\)"):
                client.ping()
            client.abort()
            assert server.connections == 3
        finally:
            server.close()

    def test_non_draining_errors_are_not_retried(self):
        server = _ScriptedServer(["other", "ok"])
        try:
            with self._client(server, retries=3) as client:
                response = client.ping()
            assert response["status"] == "error"
            assert response["error"]["code"] == "malformed"
            # No retry happened: one connection, one request.
            assert server.connections == 1
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_retry_against_real_draining_server(self, harness):
        """A client with retries rides out a server drain refusal.

        ``ping`` is answered inline even while draining, so this uses a
        real read submission — the op the refusal actually guards.
        """
        harness.call(lambda: setattr(harness.server, "_draining", True))
        try:
            client = harness.client()
            client.retries = 3
            client.retry_backoff = 0.15

            def undrain():
                time.sleep(0.1)
                harness.call(
                    lambda: setattr(harness.server, "_draining", False))

            helper = threading.Thread(target=undrain)
            helper.start()
            try:
                response = client.basecall("retry-read", SIGNALS[0])
            finally:
                helper.join()
                client.close()
            assert response["status"] == "ok"
            assert response["id"] == "retry-read"
        finally:
            harness.call(
                lambda: setattr(harness.server, "_draining", False))
