"""Tests for FASTA/FASTQ I/O and model checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.basecaller import BonitoConfig, BonitoModel
from repro.genomics import (
    encode_bases,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from tests.conftest import TINY_CONFIG


class TestFasta:
    def test_roundtrip(self, tmp_path):
        records = {
            "chr1": encode_bases("ACGTACGTACGT"),
            "chr2": encode_bases("TTTTAAAACCCC"),
        }
        path = write_fasta(tmp_path / "ref.fasta", records, width=5)
        loaded = read_fasta(path)
        assert set(loaded) == {"chr1", "chr2"}
        for name in records:
            assert np.array_equal(loaded[name], records[name])

    def test_line_wrapping(self, tmp_path):
        path = write_fasta(tmp_path / "ref.fasta",
                           {"x": encode_bases("A" * 23)}, width=10)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert [len(l) for l in lines[1:]] == [10, 10, 3]

    def test_header_metadata_stripped(self, tmp_path):
        (tmp_path / "in.fasta").write_text(">seq1 some description\nACGT\n")
        loaded = read_fasta(tmp_path / "in.fasta")
        assert list(loaded) == ["seq1"]


class TestFastq:
    def test_roundtrip(self, tmp_path):
        records = [
            ("r1", encode_bases("ACGT"), np.array([30, 20, 10, 40])),
            ("r2", encode_bases("GG"), np.array([5, 5])),
        ]
        path = write_fastq(tmp_path / "reads.fastq", iter(records))
        loaded = read_fastq(path)
        assert len(loaded) == 2
        for (n1, b1, q1), (n2, b2, q2) in zip(records, loaded):
            assert n1 == n2
            assert np.array_equal(b1, b2)
            assert np.array_equal(q1, q2)

    def test_quality_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_fastq(tmp_path / "bad.fastq",
                        iter([("r", encode_bases("ACG"), np.array([1]))]))

    def test_malformed_file(self, tmp_path):
        (tmp_path / "bad.fastq").write_text("@r\nACGT\n+\n")
        with pytest.raises(ValueError):
            read_fastq(tmp_path / "bad.fastq")

    def test_quality_clipped(self, tmp_path):
        path = write_fastq(tmp_path / "r.fastq",
                           iter([("r", encode_bases("A"),
                                  np.array([1000]))]))
        _, _, quals = read_fastq(path)[0]
        assert quals[0] == 60


class TestCheckpoint:
    def test_roundtrip_with_metadata(self, tmp_path):
        model = BonitoModel(TINY_CONFIG)
        path = nn.save_checkpoint(model, tmp_path / "m.npz",
                                  metadata={"note": "hello", "epoch": 3})
        clone = BonitoModel(TINY_CONFIG)
        meta = nn.load_checkpoint(clone, path)
        assert meta == {"note": "hello", "epoch": 3}
        for (n1, p1), (n2, p2) in zip(model.named_parameters(),
                                      clone.named_parameters()):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_strict_load_rejects_missing(self, tmp_path):
        model = BonitoModel(TINY_CONFIG)
        path = nn.save_checkpoint(model, tmp_path / "m.npz")
        other = BonitoModel(BonitoConfig(conv_channels=(8, 16),
                                         lstm_hidden=16,
                                         num_lstm_layers=3, seed=7))
        with pytest.raises((KeyError, ValueError)):
            nn.load_checkpoint(other, path)

    def test_buffers_roundtrip(self, tmp_path):
        bn = nn.BatchNorm1d(4)
        bn(nn.Tensor(np.random.default_rng(0).standard_normal((2, 4, 6))))
        path = nn.save_checkpoint(bn, tmp_path / "bn.npz")
        clone = nn.BatchNorm1d(4)
        nn.load_checkpoint(clone, path)
        assert np.allclose(clone.running_mean, bn.running_mean)
        assert np.allclose(clone.running_var, bn.running_var)
