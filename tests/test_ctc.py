"""Tests for CTC loss and decoders."""

import numpy as np
import pytest

from repro import nn
from repro.nn.ctc import _extend_targets, _forward_backward
from .test_tensor import numerical_gradient


class TestForwardBackward:
    def test_matches_bruteforce_enumeration(self):
        """Compare CTC likelihood against explicit path enumeration."""
        rng = np.random.default_rng(3)
        T, K = 4, 3
        logits = rng.standard_normal((T, K))
        log_probs = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        target = np.array([1, 2])

        def collapse(path):
            out = []
            prev = None
            for p in path:
                if p != prev and p != 0:
                    out.append(p)
                prev = p
            return out

        total = 0.0
        for path in np.ndindex(*(K,) * T):
            if collapse(path) == list(target):
                total += np.exp(sum(log_probs[t, p]
                                    for t, p in enumerate(path)))
        nll, _ = _forward_backward(log_probs, target, blank=0)
        assert np.isclose(-nll, np.log(total), atol=1e-10)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        logits = nn.Tensor(rng.standard_normal((2, 7, 4)),
                           requires_grad=True)
        targets = [np.array([1, 2, 1]), np.array([3, 3])]
        nn.ctc_loss(logits, targets).backward()

        def f():
            return float(nn.ctc_loss(nn.Tensor(logits.data), targets).data)

        numeric = numerical_gradient(f, logits.data, eps=1e-5)
        assert np.abs(logits.grad - numeric).max() < 1e-6

    def test_impossible_target_infinite_loss(self):
        log_probs = np.log(np.full((2, 3), 1 / 3))
        nll, grad = _forward_backward(log_probs, np.array([1, 1, 1]), 0)
        assert np.isinf(nll)
        assert np.allclose(grad, 0.0)

    def test_repeated_symbols_need_blank(self):
        # Target "11" needs at least 3 frames (1, blank, 1).
        log_probs = np.log(np.full((2, 2), 0.5))
        nll, _ = _forward_backward(log_probs, np.array([1, 1]), 0)
        assert np.isinf(nll)

    def test_extend_targets(self):
        ext = _extend_targets(np.array([2, 3]), blank=0)
        assert list(ext) == [0, 2, 0, 3, 0]

    def test_perfect_prediction_low_loss(self):
        # Strongly peaked logits for blank,1,blank → target [1].
        logits = np.full((1, 3, 3), -10.0)
        logits[0, 0, 0] = 10.0
        logits[0, 1, 1] = 10.0
        logits[0, 2, 0] = 10.0
        loss = nn.ctc_loss(nn.Tensor(logits, requires_grad=True),
                           [np.array([1])])
        assert float(loss.data) < 0.01


class TestLossAPI:
    def test_batch_mismatch_raises(self):
        logits = nn.Tensor(np.zeros((2, 4, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            nn.ctc_loss(logits, [np.array([1])])

    def test_label_range_check(self):
        logits = nn.Tensor(np.zeros((1, 4, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            nn.ctc_loss(logits, [np.array([5])])

    def test_reductions(self):
        rng = np.random.default_rng(0)
        logits = nn.Tensor(rng.standard_normal((2, 6, 4)),
                           requires_grad=True)
        targets = [np.array([1]), np.array([2, 3])]
        mean = float(nn.ctc_loss(logits, targets, reduction="mean").data)
        total = float(nn.ctc_loss(logits, targets, reduction="sum").data)
        assert np.isclose(total, mean * 2)
        with pytest.raises(ValueError):
            nn.ctc_loss(logits, targets, reduction="bogus")

    def test_forward_score(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((6, 4))
        log_probs = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        score = nn.ctc_forward_score(log_probs, np.array([1, 2]))
        assert score < 0.0  # log probability


class TestDecoders:
    def test_greedy_collapses_and_strips_blanks(self):
        frames = np.array([1, 1, 0, 2, 2, 0, 2])
        log_probs = np.full((7, 3), -10.0)
        log_probs[np.arange(7), frames] = 0.0
        assert list(nn.greedy_decode(log_probs)) == [1, 2, 2]

    def test_beam_equals_greedy_on_peaked_input(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((10, 4)) * 8  # strongly peaked
        log_probs = logits - np.log(np.exp(logits).sum(-1, keepdims=True))
        greedy = nn.greedy_decode(log_probs)
        beam = nn.beam_search_decode(log_probs, beam_width=4)
        assert list(greedy) == list(beam)

    def test_beam_can_beat_greedy(self):
        # Classic case: blank-heavy best path hides a higher-mass label.
        log_probs = np.log(np.array([
            [0.4, 0.35, 0.25],
            [0.4, 0.35, 0.25],
        ]))
        greedy = nn.greedy_decode(log_probs)
        beam = nn.beam_search_decode(log_probs, beam_width=8)
        # Greedy path = blank,blank -> empty; beam sums label mass.
        assert list(greedy) == []
        assert list(beam) == [1]

    def test_empty_output(self):
        log_probs = np.zeros((3, 2))
        log_probs[:, 0] = 5.0
        assert len(nn.greedy_decode(log_probs)) == 0
