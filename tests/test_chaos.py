"""Seeded fault-injection tests for the sweep runtime.

Every fault here is planned by a :class:`repro.reliability.FaultInjector`
and driven through the *real* executor paths — retry-with-backoff,
timeout kill, crashed-worker respawn, corrupt-cache-entry-as-miss, and
journal-based resume after the parent process itself is killed.  Job
targets live at module level so worker processes can resolve them by
dotted name (``"tests.test_chaos:..."``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.reliability import (
    CRASH_EXIT_CODE,
    ChaosError,
    FaultInjector,
    FaultSpec,
)
from repro.runtime import (
    Job,
    ResultCache,
    SweepPlan,
    SweepRunner,
    Telemetry,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Worker-resolvable job targets
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _simulate(seed: int) -> dict:
    """Deterministic seeded computation (stand-in for a design point)."""
    import numpy as np
    rng = np.random.default_rng(seed)
    values = rng.normal(size=256)
    return {"seed": seed, "mean": float(values.mean()),
            "norm": float(np.linalg.norm(values))}


def _sleep_long(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _diverging_training(seed: int) -> list:
    """A training job whose very first loss is poisoned to NaN."""
    import numpy as np
    from repro import nn
    from repro.basecaller import (
        BonitoModel,
        TrainConfig,
        make_training_chunks,
        train_model,
    )
    from repro.reliability import HealthMonitor
    from tests.conftest import TINY_CONFIG

    def poisoned_loss(model, signals, targets):
        loss = nn.ctc_loss(model(signals), targets)
        loss.data = loss.data * np.nan
        return loss

    chunks = make_training_chunks(num_chunks=16, chunk_samples=128,
                                  genome_size=8_000, seed=seed)
    model = BonitoModel(TINY_CONFIG)
    return train_model(model, chunks,
                       TrainConfig(epochs=1, batch_size=16, warmup_steps=2,
                                   seed=seed),
                       loss_fn=poisoned_loss, health=HealthMonitor())


# ----------------------------------------------------------------------
# Fault planning
# ----------------------------------------------------------------------
class TestFaultPlanning:
    def test_unknown_fault_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultInjector(tmp_path).inject("job", "gremlins")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="power-sag")

    def test_plan_random_is_seed_deterministic(self, tmp_path):
        tags = [f"job/{i}" for i in range(40)]
        first = FaultInjector(tmp_path / "a", seed=7).plan_random(
            tags, rate=0.3, kinds=("exception", "crash"))
        second = FaultInjector(tmp_path / "b", seed=7).plan_random(
            tags, rate=0.3, kinds=("exception", "crash"))
        assert first == second
        assert 0 < len(first) < len(tags)
        other = FaultInjector(tmp_path / "c", seed=8).plan_random(
            tags, rate=0.3, kinds=("exception", "crash"))
        assert other != first

    def test_wrap_leaves_unplanned_jobs_alone(self, tmp_path):
        injector = FaultInjector(tmp_path)
        job = Job(fn="tests.test_chaos:_square", kwargs={"x": 2}, tag="sq")
        assert injector.wrap(job) is job
        injector.inject("sq", "exception")
        wrapped = injector.wrap(job)
        assert wrapped.fn == "repro.reliability.chaos:chaotic_call"
        assert wrapped.tag == job.tag
        assert wrapped.kwargs["fn"] == job.fn


# ----------------------------------------------------------------------
# Fault kinds through the executor
# ----------------------------------------------------------------------
class TestInjectedFaults:
    def test_transient_exception_retried_then_succeeds(self, tmp_path):
        injector = FaultInjector(tmp_path / "chaos", seed=0)
        injector.inject("sq/1", "exception", times=2)
        events = []
        telemetry = Telemetry()
        telemetry.subscribe(events.append)
        jobs = [Job(fn="tests.test_chaos:_square", kwargs={"x": i},
                    tag=f"sq/{i}") for i in range(3)]
        result = SweepRunner(workers=1, retries=2, backoff=0.0,
                             telemetry=telemetry,
                             fault_injector=injector).run(
            SweepPlan("chaos-exception", jobs))
        assert result.ok
        assert result.values == [0, 1, 4]
        assert result.outcomes[1].attempts == 3
        assert injector.attempts("sq/1") == 3
        assert [e["event"] for e in events].count("retry") == 2

    def test_exhausted_retries_surface_chaos_error_type(self, tmp_path):
        injector = FaultInjector(tmp_path / "chaos")
        injector.inject("sq/0", "exception", times=5)
        jobs = [Job(fn="tests.test_chaos:_square", kwargs={"x": 2},
                    tag="sq/0")]
        result = SweepRunner(workers=1, retries=1, backoff=0.0,
                             fault_injector=injector).run(
            SweepPlan("chaos-exhaust", jobs))
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error_type == "ChaosError"
        assert "injected transient exception" in outcome.error

    def test_worker_crash_retried_to_success(self, tmp_path):
        injector = FaultInjector(tmp_path / "chaos")
        injector.inject("sim/1", "crash", times=1)
        jobs = [Job(fn="tests.test_chaos:_simulate", kwargs={"seed": s},
                    tag=f"sim/{s}") for s in range(3)]
        result = SweepRunner(workers=2, retries=1, backoff=0.0,
                             fault_injector=injector).run(
            SweepPlan("chaos-crash", jobs))
        assert result.ok
        assert result.outcomes[1].attempts == 2
        assert injector.attempts("sim/1") == 2
        # Bitwise-identical to a clean serial run despite the crash.
        clean = SweepRunner(workers=1).run(SweepPlan("clean", jobs))
        assert result.values == clean.values

    def test_hang_killed_by_timeout_then_recovers(self, tmp_path):
        injector = FaultInjector(tmp_path / "chaos")
        injector.inject("sq/0", "hang", times=1, hang_s=30.0)
        events = []
        telemetry = Telemetry()
        telemetry.subscribe(events.append)
        jobs = [Job(fn="tests.test_chaos:_square", kwargs={"x": 6},
                    tag="sq/0")]
        started = time.monotonic()
        result = SweepRunner(workers=2, timeout=1.0, retries=1,
                             backoff=0.0, telemetry=telemetry,
                             fault_injector=injector).run(
            SweepPlan("chaos-hang", jobs))
        assert time.monotonic() - started < 20.0  # killed, not slept out
        assert result.ok and result.values == [36]
        assert result.outcomes[0].attempts == 2
        assert result.summary["timeouts"] >= 1
        retries = [e for e in events if e["event"] == "retry"]
        assert retries and retries[0]["reason"] == "timeout"

    def test_hang_without_timeout_still_surfaces(self, tmp_path):
        """An unarmed hang raises ChaosError — it must never pass."""
        injector = FaultInjector(tmp_path / "chaos")
        injector.inject("sq/0", "hang", times=1, hang_s=0.05)
        jobs = [Job(fn="tests.test_chaos:_square", kwargs={"x": 2},
                    tag="sq/0")]
        result = SweepRunner(workers=1, retries=0,
                             fault_injector=injector).run(
            SweepPlan("chaos-unarmed-hang", jobs))
        assert not result.ok
        assert result.outcomes[0].error_type == "ChaosError"

    def test_chaos_never_pollutes_the_cache_namespace(self, tmp_path):
        """Keys address the original job, not its chaotic wrapper."""
        cache = ResultCache(tmp_path / "cache")
        injector = FaultInjector(tmp_path / "chaos")
        injector.inject("sq", "exception", times=1)
        job = Job(fn="tests.test_chaos:_square", kwargs={"x": 5}, tag="sq")
        chaotic = SweepRunner(workers=1, retries=1, backoff=0.0,
                              cache=cache, salt="t",
                              fault_injector=injector).run(
            SweepPlan("chaotic", [job]))
        assert chaotic.ok and chaotic.values == [25]
        clean = SweepRunner(workers=1, cache=cache, salt="t").run(
            SweepPlan("clean", [
                Job(fn="tests.test_chaos:_square", kwargs={"x": 5},
                    tag="sq")]))
        assert clean.outcomes[0].cache_hit
        assert clean.values == [25]


# ----------------------------------------------------------------------
# Cache corruption
# ----------------------------------------------------------------------
class TestCacheCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_entry_is_quarantined_miss(self, tmp_path, mode):
        cache = ResultCache(tmp_path / "cache")
        injector = FaultInjector(tmp_path / "chaos", seed=3)
        key = "ab" + "0" * 62
        cache.put(key, {"rows": [1.5, 2.5]})
        injector.corrupt_entry(cache, key, mode=mode)

        hit, value = cache.lookup(key)
        assert not hit and value is None
        assert cache.quarantined == 1
        assert key not in cache
        assert list(cache.keys()) == []
        bad = list(cache.quarantine_dir.glob("*.bad"))
        assert len(bad) == 1
        why = bad[0].with_suffix(".why")
        assert why.exists() and why.read_text().strip()

        # The slot is immediately writable again and round-trips.
        cache.put(key, {"rows": [1.5, 2.5]})
        assert cache.get(key) == {"rows": [1.5, 2.5]}

    def test_every_bitflip_offset_is_a_quarantined_miss(self, tmp_path):
        """No byte of the envelope may pass corrupted — flip them all."""
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {"seed": 3, "accuracy": 0.925})
        pristine = cache.path_for(key).read_bytes()
        for offset in range(len(pristine)):
            corrupted = bytearray(pristine)
            corrupted[offset] ^= 0x40
            cache.path_for(key).parent.mkdir(exist_ok=True)
            cache.path_for(key).write_bytes(bytes(corrupted))
            hit, value = cache.lookup(key)
            if hit:
                assert value == {"seed": 3, "accuracy": 0.925}, (
                    f"bit flip at offset {offset} returned a wrong value")

    def test_unknown_corruption_mode_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ef" + "2" * 62
        cache.put(key, 1)
        with pytest.raises(ValueError, match="corruption mode"):
            FaultInjector(tmp_path / "chaos").corrupt_entry(
                cache, key, mode="gamma-ray")

    def test_corrupt_entry_recomputed_through_runner(self, tmp_path):
        """The executor treats a corrupted entry as a miss and re-runs."""
        cache = ResultCache(tmp_path / "cache")
        injector = FaultInjector(tmp_path / "chaos", seed=1)
        job = Job(fn="tests.test_chaos:_simulate", kwargs={"seed": 9},
                  tag="sim/9")
        first = SweepRunner(workers=1, cache=cache, salt="t").run(
            SweepPlan("first", [job]))
        key = list(cache.keys())[0]
        injector.corrupt_entry(cache, key, mode="truncate")
        second = SweepRunner(workers=1, cache=cache, salt="t").run(
            SweepPlan("second", [job]))
        assert second.ok
        assert not second.outcomes[0].cache_hit  # recomputed, not trusted
        assert second.values == first.values
        assert cache.quarantined == 1
        # The recomputed value was re-cached and is trusted again.
        third = SweepRunner(workers=1, cache=cache, salt="t").run(
            SweepPlan("third", [job]))
        assert third.outcomes[0].cache_hit


# ----------------------------------------------------------------------
# NaN divergence through the executor
# ----------------------------------------------------------------------
class TestDivergenceSurfacing:
    def test_nan_divergence_is_a_structured_failed_outcome(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        job = Job(fn="tests.test_chaos:_diverging_training",
                  kwargs={"seed": 5}, tag="train/nan")
        result = SweepRunner(workers=2, retries=0,
                             journal=journal_path).run(
            SweepPlan("divergence", [job]))
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error_type == "DivergenceError"
        assert "numeric divergence" in outcome.error
        # The journal records the structured failure too.
        records = [json.loads(line) for line
                   in journal_path.read_text().splitlines()]
        jobs = [r for r in records if r["event"] == "job"]
        assert jobs[-1]["status"] == "failed"
        assert jobs[-1]["error_type"] == "DivergenceError"


# ----------------------------------------------------------------------
# Kill-and-resume: the parent process itself dies mid-plan
# ----------------------------------------------------------------------
_SWEEP_SCRIPT = """\
import json, sys
from repro.reliability import FaultInjector
from repro.runtime import Job, SweepPlan, SweepRunner

state, cache_dir, journal, chaos, resume = sys.argv[1:6]
jobs = [Job(fn="tests.test_chaos:_simulate", kwargs={"seed": s},
            tag=f"sim/{s}") for s in range(4)]
injector = FaultInjector(state, seed=0)
if chaos == "1":
    injector.inject("sim/2", "crash", times=1)
runner = SweepRunner(workers=1, cache=cache_dir, retries=0,
                     salt="kill-resume", journal=journal,
                     resume=resume == "1", fault_injector=injector)
try:
    result = runner.run(SweepPlan("kill-resume", jobs))
finally:
    if runner.journal is not None:
        runner.journal.close()
print(json.dumps(result.values))
sys.exit(0 if result.ok else 3)
"""


def _run_sweep_subprocess(tmp_path, *, state, cache, journal, chaos,
                          resume):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), str(REPO_ROOT),
                    env.get("PYTHONPATH", "")) if p)
    return subprocess.run(
        [sys.executable, "-c", _SWEEP_SCRIPT, str(state), str(cache),
         str(journal), chaos, resume],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=180)


class TestKillAndResume:
    def test_killed_sweep_resumes_bitwise_identical(self, tmp_path):
        state = tmp_path / "chaos"
        cache = tmp_path / "cache"
        journal = tmp_path / "run.jsonl"

        # 1. The parent process is killed (os._exit) mid-plan, on job 2.
        killed = _run_sweep_subprocess(tmp_path, state=state, cache=cache,
                                       journal=journal, chaos="1",
                                       resume="0")
        assert killed.returncode == CRASH_EXIT_CODE, killed.stderr
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        done = [r for r in records if r["event"] == "job"]
        assert len(done) == 2  # jobs 0 and 1 finished before the kill
        assert all(r["status"] == "ok" for r in done)

        # 2. Resume: journal + cache replay jobs 0-1, jobs 2-3 execute.
        resumed = _run_sweep_subprocess(tmp_path, state=state, cache=cache,
                                        journal=journal, chaos="1",
                                        resume="1")
        assert resumed.returncode == 0, resumed.stderr
        resumed_values = json.loads(resumed.stdout.splitlines()[-1])

        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        headers = [r for r in records if r["event"] == "plan"]
        assert len(headers) == 2
        assert headers[1]["resumed"] == 2
        second_session = [r for r in records[records.index(headers[1]):]
                          if r["event"] == "job"]
        assert len(second_session) == 4
        assert sum(r["cache"] == "hit" for r in second_session) == 2

        # 3. A fresh uninterrupted run must match the resumed one bitwise.
        fresh = _run_sweep_subprocess(
            tmp_path, state=tmp_path / "chaos2", cache=tmp_path / "cache2",
            journal=tmp_path / "fresh.jsonl", chaos="0", resume="0")
        assert fresh.returncode == 0, fresh.stderr
        fresh_values = json.loads(fresh.stdout.splitlines()[-1])
        assert resumed_values == fresh_values


# ----------------------------------------------------------------------
# Graceful shutdown of the worker pool
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_keyboard_interrupt_tears_down_every_worker(self, monkeypatch):
        import repro.runtime.executor as executor

        spawned = []
        original_init = executor._Worker.__init__

        def tracking_init(self, ctx, result_q):
            original_init(self, ctx, result_q)
            spawned.append(self)

        monkeypatch.setattr(executor._Worker, "__init__", tracking_init)

        def interrupt(busy_workers, pending, now):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor.SweepRunner, "_poll_interval",
                            staticmethod(interrupt))

        events = []
        telemetry = Telemetry()
        telemetry.subscribe(events.append)
        jobs = [Job(fn="tests.test_chaos:_sleep_long",
                    kwargs={"seconds": 30.0}, tag=f"sleep/{i}")
                for i in range(2)]
        runner = SweepRunner(workers=2, telemetry=telemetry)
        started = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            runner.run(SweepPlan("shutdown", jobs))
        # Teardown terminated mid-job workers instead of waiting them out.
        assert time.monotonic() - started < 15.0
        assert len(spawned) == 2
        for worker in spawned:
            assert not worker.proc.is_alive()
            assert worker.proc.exitcode is not None
        interrupted = [e for e in events if e["event"] == "interrupted"]
        assert interrupted
        assert interrupted[0]["reason"] == "KeyboardInterrupt"
        assert interrupted[0]["in_flight"] == 2
