"""Shared fixtures.

Tests never touch the full pretrained baseline (training it takes
minutes); anything needing a *trained* basecaller uses the
session-scoped ``tiny_model`` fixture, which trains a very small
network for a few epochs — enough for every invariant under test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.basecaller import (
    BonitoConfig,
    BonitoModel,
    TrainConfig,
    make_training_chunks,
    train_model,
)

TINY_CONFIG = BonitoConfig(conv_channels=(8, 16), lstm_hidden=16,
                           num_lstm_layers=2, seed=7)


@pytest.fixture(scope="session")
def tiny_chunks():
    return make_training_chunks(num_chunks=64, chunk_samples=192,
                                genome_size=20_000, seed=321)


@pytest.fixture(scope="session")
def tiny_trained(tiny_chunks):
    """A small basecaller trained briefly (shared, do not mutate)."""
    model = BonitoModel(TINY_CONFIG)
    # 10 epochs lands the tiny model well above the ~46% identity a
    # collapsed (noise-dominated) basecaller still scores by chance, so
    # "non-ideality X hurts accuracy" assertions are not coin flips.
    train_model(model, tiny_chunks,
                TrainConfig(epochs=10, batch_size=16, lr=8e-3))
    return model


@pytest.fixture()
def tiny_model(tiny_trained):
    """A fresh mutable copy of the tiny trained basecaller."""
    model = BonitoModel(TINY_CONFIG)
    model.load_state_dict(tiny_trained.state_dict())
    model.eval()
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
