"""Tests for the Swordfish static analyzer (``repro.analysis``).

Covers every rule against good/bad fixture pairs, suppression
comments, baseline ratchet semantics, the CLI, and — most importantly
— the self-check that the repo itself stays clean against the
committed baseline, plus the two acceptance scenarios from the design:
a new ``SwordfishConfig`` field that skips ``cache_key`` and a bare
``np.random`` call must both fail the analysis.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    Baseline,
    DEFAULT_CONFIG,
    Finding,
    diff_findings,
    main,
    run_analysis,
)

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO = Path(__file__).resolve().parents[1]
BASELINE = REPO / ".swordfish-lint-baseline.json"

#: Fixture files live outside the repo's real scope patterns, so widen
#: every scope to "match anything" while keeping the rule policy.
WIDE_CONFIG = replace(
    DEFAULT_CONFIG,
    dtype_scope=("",),
    alias_scope=("",),
    numeric_scope=("",),
    numeric_exclude=(),
    swallow_scope=("",),
    perf_scope=("",),
    async_scope=("",),
    lock_scope=("",),
    lifecycle_scope=("",),
    fork_scope=("",),
)


def analyze(*paths: Path, config: AnalysisConfig = WIDE_CONFIG, **kwargs):
    return run_analysis(list(paths), root=FIXTURES, config=config, **kwargs)


def rules_of(result) -> set[str]:
    return {finding.rule for finding in result.findings}


# ----------------------------------------------------------------------
# Rule fixtures: each bad file fires exactly its rule; each good file
# is completely clean.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rule_id, stem", [
    ("SWD001", "swd001"),
    ("SWD002", "swd002"),
    ("SWD003", "swd003"),
    ("SWD004", "swd004"),
    ("SWD005", "swd005"),
    ("SWD007", "swd007"),
    ("SWD008", "swd008"),
    ("SWD009", "swd009"),
    ("SWD010", "swd010"),
    ("SWD011", "swd011"),
    ("SWD012", "swd012"),
    ("SWD013", "swd013"),
    ("SWD014", "swd014"),
])
def test_bad_fixture_fires_rule(rule_id: str, stem: str):
    result = analyze(FIXTURES / f"{stem}_bad.py")
    assert rules_of(result) == {rule_id}
    assert result.findings, "bad fixture must produce findings"
    for finding in result.findings:
        assert finding.hint, "every finding carries a fix hint"
        assert finding.line > 0 and finding.line_text


@pytest.mark.parametrize("stem", [
    "swd001", "swd002", "swd003", "swd004", "swd005", "swd007", "swd008",
    "swd009", "swd010", "swd011", "swd012", "swd013", "swd014",
])
def test_good_fixture_is_clean(stem: str):
    result = analyze(FIXTURES / f"{stem}_good.py")
    assert result.findings == []


def test_swd001_counts_every_ambient_site():
    result = analyze(FIXTURES / "swd001_bad.py")
    # np.random.normal, unseeded default_rng, stdlib random.random
    assert len(result.findings) == 3


def test_swd006_bad_package():
    result = analyze(FIXTURES / "exports_bad_pkg")
    assert rules_of(result) == {"SWD006"}
    messages = " ".join(f.message for f in result.findings)
    assert "missing_name" in messages


def test_swd006_good_package():
    result = analyze(FIXTURES / "exports_good_pkg")
    assert result.findings == []


def test_swd007_counts_every_silent_handler():
    result = analyze(FIXTURES / "swd007_bad.py")
    # bare, Exception, BaseException, tuple, loop-continue, docstring-only
    assert len(result.findings) == 6


def test_swd007_scope_is_reliability_and_runtime_only():
    # With the real config the fixture path matches neither scope
    # pattern, so the rule stays silent outside the fault-handling
    # layers it polices.
    result = analyze(FIXTURES / "swd007_bad.py", config=DEFAULT_CONFIG)
    assert "SWD007" not in rules_of(result)


# ----------------------------------------------------------------------
# Concurrency family (SWD009–SWD013): shape of the findings, not just
# presence — the call graph must name the chain, the lock, the leak.
# ----------------------------------------------------------------------

def test_swd009_reports_direct_and_transitive():
    result = analyze(FIXTURES / "swd009_bad.py")
    messages = [finding.message for finding in result.findings]
    assert len(messages) == 2
    assert any("blocks the event loop" in m for m in messages)
    assert any("synchronous call chain" in m and "_flush()" in m
               for m in messages)


def test_swd010_names_the_lock_and_the_attr():
    result = analyze(FIXTURES / "swd010_bad.py")
    assert len(result.findings) == 2
    assert all("self._lock" in finding.message
               for finding in result.findings)
    attrs = {m.split("`")[3] for m in
             (finding.message for finding in result.findings)}
    assert attrs == {"self.total", "self.note"}


def test_swd011_covers_tasks_locals_and_attrs():
    result = analyze(FIXTURES / "swd011_bad.py")
    messages = " | ".join(finding.message for finding in result.findings)
    assert len(result.findings) == 3
    assert "task handle dropped" in messages
    assert "`pool` holds a `ThreadPoolExecutor(...)`" in messages
    assert "`self._pool`" in messages


def test_swd012_covers_order_coroutine_and_thread_context():
    result = analyze(FIXTURES / "swd012_bad.py")
    messages = " | ".join(finding.message for finding in result.findings)
    assert len(result.findings) == 3
    assert "after creating a thread" in messages
    assert "from a coroutine" in messages
    assert "worker-thread context" in messages


def test_swd013_is_error_severity():
    result = analyze(FIXTURES / "swd013_bad.py")
    assert len(result.findings) == 2
    assert {finding.severity for finding in result.findings} == {"error"}
    messages = " | ".join(finding.message for finding in result.findings)
    assert "drops it" in messages and "shields a fresh coroutine" in messages


def test_concurrency_rules_respect_scopes():
    # Under the real config the fixture paths match no concurrency
    # scope, so the whole family stays silent outside src/repro et al.
    for stem in ("swd009", "swd010", "swd011", "swd012", "swd013"):
        result = analyze(FIXTURES / f"{stem}_bad.py", config=DEFAULT_CONFIG)
        assert not rules_of(result) & {
            "SWD009", "SWD010", "SWD011", "SWD012", "SWD013"}


def test_select_and_ignore_filter_rules():
    bad = FIXTURES / "swd001_bad.py"
    assert rules_of(analyze(bad, select=["SWD001"])) == {"SWD001"}
    assert analyze(bad, ignore=["SWD001"]).findings == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------

def _write(tmp_path: Path, text: str) -> Path:
    target = tmp_path / "snippet.py"
    target.write_text(text, encoding="utf-8")
    return target


def test_trailing_suppression(tmp_path):
    target = _write(tmp_path, (
        "def f(a, b):\n"
        "    return a / b  # swd-ok: SWD005 -- caller guarantees b != 0\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert result.findings == []
    assert result.suppressed == 1


def test_comment_line_above_suppresses_next_line(tmp_path):
    target = _write(tmp_path, (
        "def f(a, b):\n"
        "    # swd-ok: SWD005 -- caller guarantees b != 0\n"
        "    return a / b\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    target = _write(tmp_path, (
        "def f(a, b):\n"
        "    return a / b  # swd-ok: SWD001 -- wrong rule id\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert rules_of(result) == {"SWD005"}


def test_file_level_suppression(tmp_path):
    target = _write(tmp_path, (
        "# swd-file-ok: SWD005 -- scratch module, reviewed\n"
        "def f(a, b):\n"
        "    return a / b\n"
        "def g(a, b):\n"
        "    return b / a\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert result.findings == []
    assert result.suppressed == 2


def test_all_keyword_suppresses_everything(tmp_path):
    target = _write(tmp_path, (
        "import numpy as np\n"
        "noise = np.random.normal()  # swd-ok: all -- fixture\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert result.findings == []


# ----------------------------------------------------------------------
# Unused suppressions: a `# swd-ok` that matches no finding is debt
# rot — it fails the run and blocks --write-baseline.
# ----------------------------------------------------------------------

def test_unused_suppression_is_reported(tmp_path):
    target = _write(tmp_path, (
        "def f(a, b):\n"
        "    return a + b  # swd-ok: SWD005 -- no division here anymore\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert result.findings == []
    assert len(result.unused_suppressions) == 1
    entry = result.unused_suppressions[0]
    assert entry.rules == ("SWD005",)
    assert entry.line == 2
    assert "no division" in entry.reason


def test_used_suppression_is_not_reported(tmp_path):
    target = _write(tmp_path, (
        "def f(a, b):\n"
        "    return a / b  # swd-ok: SWD005 -- caller checks b\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert result.suppressed == 1
    assert result.unused_suppressions == []


def test_unused_suppression_fails_cli(tmp_path, capsys):
    target = _write(tmp_path, "VALUE = 1  # swd-ok: SWD008 -- stale\n")
    code = main([str(target), "--no-baseline", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "unused suppressions" in out
    assert "FAILED" in out


def test_write_baseline_refuses_unused_suppressions(tmp_path, capsys):
    target = _write(tmp_path, (
        "import numpy as np\n"
        "x = np.random.normal()\n"
        "y = 1  # swd-ok: SWD005 -- stale excuse\n"
    ))
    code = main([str(target), "--write-baseline", "--root", str(tmp_path)])
    err = capsys.readouterr().err
    assert code == 1
    assert "refusing to write baseline" in err
    assert not (tmp_path / ".swordfish-lint-baseline.json").exists()


def test_docstring_swd_ok_text_is_not_a_suppression(tmp_path):
    # Only real COMMENT tokens count: documenting the syntax inside a
    # string literal must neither suppress nor show up as unused.
    target = _write(tmp_path, (
        'DOC = """use `# swd-ok: SWD005 -- like this` to suppress"""\n'
        "def f(a, b):\n"
        "    return a / b\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    assert rules_of(result) == {"SWD005"}
    assert result.unused_suppressions == []


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------

def test_fingerprint_ignores_line_numbers():
    a = Finding(rule="SWD005", severity="warning", path="m.py", line=10,
                col=4, message="x", line_text="    return a / b")
    b = Finding(rule="SWD005", severity="warning", path="m.py", line=99,
                col=4, message="x", line_text="    return a / b")
    assert a.fingerprint == b.fingerprint


def test_baseline_roundtrip_and_ratchet(tmp_path):
    target = _write(tmp_path, "def f(a, b):\n    return a / b\n")
    first = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings, baseline_path).write()

    # Same findings against the baseline: nothing new.
    reloaded = Baseline.load(baseline_path)
    diff = diff_findings(first.findings, reloaded)
    assert not diff.failed
    assert len(diff.baselined) == 1 and not diff.stale

    # A new violation is NOT absorbed by the baseline.
    target.write_text(
        "def f(a, b):\n    return a / b\n"
        "def g(p, q):\n    return p / q\n", encoding="utf-8")
    second = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    diff = diff_findings(second.findings, reloaded)
    assert diff.failed
    assert len(diff.new) == 1 and len(diff.baselined) == 1

    # Fixing the old violation leaves a stale entry to garbage-collect.
    target.write_text(
        "def f(a, b):\n"
        "    if b == 0:\n"
        "        raise ValueError('b')\n"
        "    return a / b\n", encoding="utf-8")
    third = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    diff = diff_findings(third.findings, reloaded)
    assert not diff.failed
    assert len(diff.stale) == 1


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    target = _write(tmp_path, (
        "def f(a, b):\n"
        "    return a / b\n"
        "def g(a, b):\n"
        "    return a / b\n"
    ))
    result = run_analysis([target], root=tmp_path, config=WIDE_CONFIG)
    prints = [finding.fingerprint for finding in result.findings]
    assert len(prints) == 2 and len(set(prints)) == 2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    bad = _write(tmp_path, "import numpy as np\nx = np.random.normal()\n")
    assert main([str(bad), "--no-baseline", "--root", str(tmp_path)]) == 1

    assert main([str(bad), "--write-baseline",
                 "--root", str(tmp_path)]) == 0
    assert main([str(bad), "--root", str(tmp_path)]) == 0

    assert main([str(tmp_path / "nope.py"), "--root", str(tmp_path)]) == 2
    capsys.readouterr()


def test_cli_json_report(tmp_path, capsys):
    bad = _write(tmp_path, "import numpy as np\nx = np.random.normal()\n")
    code = main([str(bad), "--no-baseline", "--format", "json",
                 "--root", str(tmp_path)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["summary"]["ok"] is False
    assert payload["findings"][0]["rule"] == "SWD001"
    assert payload["findings"][0]["fingerprint"]


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("SWD001", "SWD002", "SWD003", "SWD004", "SWD005",
                    "SWD006", "SWD007", "SWD008", "SWD009", "SWD010",
                    "SWD011", "SWD012", "SWD013", "SWD014"):
        assert rule_id in out


def test_cli_sarif_report(tmp_path, capsys):
    bad = _write(tmp_path, "import numpy as np\nx = np.random.normal()\n")
    code = main([str(bad), "--no-baseline", "--format", "sarif",
                 "--root", str(tmp_path)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "swordfish-analysis"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"SWD001", "SWD009", "SWD013", "SWD014"} <= rule_ids
    entry = run["results"][0]
    assert entry["ruleId"] == "SWD001"
    assert entry["baselineState"] == "new"
    assert entry["partialFingerprints"]["swordfish/v1"]
    region = entry["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2


def test_cli_sarif_baselined_findings_are_unchanged(tmp_path, capsys):
    bad = _write(tmp_path, "import numpy as np\nx = np.random.normal()\n")
    assert main([str(bad), "--write-baseline", "--root", str(tmp_path)]) == 0
    capsys.readouterr()
    code = main([str(bad), "--format", "sarif", "--root", str(tmp_path)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    states = [entry["baselineState"]
              for entry in payload["runs"][0]["results"]]
    assert states == ["unchanged"]


def test_cli_output_writes_report_to_file(tmp_path, capsys):
    bad = _write(tmp_path, "import numpy as np\nx = np.random.normal()\n")
    out_path = tmp_path / "analysis.sarif"
    code = main([str(bad), "--no-baseline", "--format", "sarif",
                 "--output", str(out_path), "--root", str(tmp_path)])
    summary = capsys.readouterr().out
    assert code == 1
    assert "wrote sarif report" in summary
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["runs"][0]["results"]


def test_cli_strict_stale(tmp_path, capsys):
    clean = _write(tmp_path, "VALUE = 1\n")
    baseline_path = tmp_path / "base.json"
    stale_entry = Finding(rule="SWD005", severity="warning", path="gone.py",
                          line=1, col=0, message="old", line_text="x / y")
    Baseline.from_findings([stale_entry], baseline_path).write()
    args = [str(clean), "--root", str(tmp_path),
            "--baseline", "base.json"]
    assert main(args) == 0
    assert main(args + ["--strict-stale"]) == 1
    capsys.readouterr()


def test_cli_syntax_error_is_a_finding(tmp_path, capsys):
    broken = _write(tmp_path, "def f(:\n")
    code = main([str(broken), "--no-baseline", "--format", "json",
                 "--root", str(tmp_path)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["findings"][0]["rule"] == "SWD000"


# ----------------------------------------------------------------------
# Self-check: the repo itself stays clean against the committed
# baseline, and the determinism rule holds with no debt at all.
# ----------------------------------------------------------------------

def test_repo_clean_against_committed_baseline(capsys):
    code = main([str(REPO / "src"), str(REPO / "examples"),
                 str(REPO / "benchmarks"), "--root", str(REPO)])
    out = capsys.readouterr().out
    assert code == 0, f"repo has new analyzer violations:\n{out}"


def test_baseline_contains_no_error_severity_debt():
    data = json.loads(BASELINE.read_text(encoding="utf-8"))
    rules = {entry["rule"] for entry in data["findings"]}
    # Determinism (SWD001), config coherence (SWD002), export
    # coherence (SWD006), coroutine misuse (SWD013), and backend
    # cache-salt policy (SWD014) are errors: they must be fixed, never
    # baselined.  examples/ and benchmarks/ are already fully seeded.
    assert not rules & {"SWD000", "SWD001", "SWD002", "SWD006", "SWD013",
                        "SWD014"}


def test_examples_and_benchmarks_have_no_ambient_randomness():
    result = run_analysis([REPO / "examples", REPO / "benchmarks"],
                          root=REPO, select=["SWD001"])
    assert result.findings == []


# ----------------------------------------------------------------------
# Acceptance scenarios
# ----------------------------------------------------------------------

def test_new_config_field_without_cache_key_fails(tmp_path):
    source = (REPO / "src/repro/core/framework.py").read_text("utf-8")
    needle = "    seed: int = 0\n"
    assert needle in source
    mutated = source.replace(
        needle, needle + "    surprise_knob: float = 1.0\n", 1)
    target = tmp_path / "framework.py"
    target.write_text(mutated, encoding="utf-8")
    result = run_analysis([target], root=tmp_path)
    assert any(finding.rule == "SWD002" and "surprise_knob" in finding.message
               for finding in result.findings)


def test_bare_np_random_in_src_fails(tmp_path):
    target = _write(tmp_path, (
        "import numpy as np\n"
        "noise = np.random.normal(0.0, 1.0, 4)\n"
    ))
    assert main([str(target), "--no-baseline", "--root", str(tmp_path)]) == 1
