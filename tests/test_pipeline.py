"""Tests for the analysis pipeline: mapper, consensus, variants, timing."""

import numpy as np
import pytest

from repro.genomics import dataset_reads, random_genome, reverse_complement
from repro.pipeline import (
    MappingHit,
    ReferenceIndex,
    call_variants,
    consensus_pileup,
    map_read,
    run_pipeline,
)


@pytest.fixture(scope="module")
def reference():
    return random_genome(8000, seed=77)


@pytest.fixture(scope="module")
def index(reference):
    return ReferenceIndex(reference, k=11)


class TestReferenceIndex:
    def test_k_validation(self, reference):
        with pytest.raises(ValueError):
            ReferenceIndex(reference, k=2)

    def test_exact_fragment_maps_to_origin(self, reference, index):
        fragment = reference[1000:1200]
        hit = map_read(index, fragment)
        assert hit is not None
        assert hit.strand == 1
        assert abs(hit.position - 1000) <= 2
        assert hit.edit_distance == 0
        assert hit.score == 1.0

    def test_reverse_strand_maps(self, reference, index):
        fragment = reverse_complement(reference[3000:3200])
        hit = map_read(index, fragment)
        assert hit is not None
        assert hit.strand == -1
        assert abs(hit.position - 3000) <= 2

    def test_mutated_fragment_still_maps(self, reference, index, rng):
        fragment = reference[500:700].copy()
        sites = rng.choice(200, size=10, replace=False)
        fragment[sites] = (fragment[sites] + 1) % 4
        hit = map_read(index, fragment)
        assert hit is not None
        assert abs(hit.position - 500) <= 2
        assert 0 < hit.edit_distance <= 12

    def test_random_query_unmapped(self, index, rng):
        noise = rng.integers(0, 4, size=200).astype(np.int8)
        hit = map_read(index, noise, min_votes=5)
        assert hit is None or hit.score < 0.8

    def test_too_short_query(self, index):
        assert map_read(index, np.array([0, 1], dtype=np.int8)) is None


class TestConsensusVariants:
    def test_consensus_recovers_reference(self, reference):
        # Perfect "reads" covering [0, 4000) in tiles.
        called = [reference[i:i + 500] for i in range(0, 4000, 250)]
        hits = [MappingHit(i, 1, 0, 1.0, 10) for i in range(0, 4000, 250)]
        consensus = consensus_pileup(reference, called, hits)
        covered = consensus >= 0
        assert covered[:4000].all()
        assert not covered[4600:].any()
        assert np.array_equal(consensus[:4000], reference[:4000])

    def test_variants_detected(self, reference):
        mutated = reference[:1000].copy()
        mutated[100] = (mutated[100] + 1) % 4
        mutated[200] = (mutated[200] + 2) % 4
        called = [mutated] * 3
        hits = [MappingHit(0, 1, 2, 0.99, 10)] * 3
        consensus = consensus_pileup(reference, called, hits)
        variants = call_variants(reference, consensus)
        positions = {v[0] for v in variants}
        assert positions == {100, 200}

    def test_unmapped_reads_ignored(self, reference):
        consensus = consensus_pileup(reference, [reference[:100]],
                                     [None])
        assert (consensus == -1).all()

    def test_length_mismatch_rejected(self, reference):
        with pytest.raises(ValueError):
            call_variants(reference, np.zeros(10, dtype=np.int8))


class TestRunPipeline:
    def test_end_to_end(self, tiny_model):
        from repro.genomics import get_dataset
        spec = get_dataset("D1")
        reads = dataset_reads("D1", num_reads=3)
        result = run_pipeline(tiny_model, reads, spec.genome())
        names = [t.name for t in result.timings]
        assert names == ["basecalling", "read_mapping", "polishing",
                         "variant_calling"]
        assert result.total_seconds > 0
        fractions = result.fractions()
        assert np.isclose(sum(fractions.values()), 1.0)
        assert len(result.called) == 3
        assert result.consensus is not None
