"""Tests for the learned surrogate VMM backend and backend-salted caching.

Covers the ISSUE-10 contract:

* the accuracy-vs-reference validation gate (loose tolerance passes,
  tight tolerance refuses; serving refuses unvalidated bundles),
* ``vmm_backend="surrogate"`` selectable through all five selection
  surfaces,
* structured fail-fast backend resolution (including garbage
  ``SWORDFISH_VMM_BACKEND`` values),
* backend-salted result-cache keys: exact backends (loop/batched)
  share entries, surrogate results never mix with exact ones,
* ``SurrogateBundle.cache_key()`` covering weights *and* non-weight
  metadata, and
* a hypothesis property that surrogate error stays within the
  declared tolerance envelope across ragged bank shapes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SwordfishConfig, deploy
from repro.core.nonidealities import get_bundle
from repro.crossbar import (
    BACKENDS,
    BACKEND_CACHE_SALTS,
    BackendResolutionError,
    CrossbarBank,
    CrossbarConfig,
    EXACT_CACHE_SALT,
    available_backends,
    backend_cache_salt,
    resolve_backend,
)
from repro.crossbar import surrogate as sg
from repro.crossbar.engine import ENV_BACKEND, _execute_batched
from repro.runtime import ResultCache, SweepRunner
from repro.runtime.cache import job_key
from repro.runtime.job import Job, SweepPlan

SIZE = 16
WRITE_VARIATION = 0.10
LOOSE_TOL = 0.25
TIGHT_TOL = 1e-6


def _echo(x, vmm_backend=None):
    """Sweep job target; the backend kwarg only shapes the cache key."""
    return x


@pytest.fixture(autouse=True)
def _clean_surrogate_registry():
    yield
    sg.clear_registry()


@pytest.fixture(scope="module")
def combined16() -> CrossbarConfig:
    return get_bundle("combined").crossbar_config(SIZE, WRITE_VARIATION)


@pytest.fixture(scope="module")
def trained16(combined16) -> sg.SurrogateBundle:
    """A tiny surrogate trained for the combined@16 design point."""
    return sg.train_surrogate(combined16, tiles=12, samples=24,
                              epochs=200, seed=3)


@pytest.fixture(scope="module")
def probe_bank(combined16) -> CrossbarBank:
    rng = np.random.default_rng(11)
    return CrossbarBank(rng.standard_normal((3 * SIZE, 2 * SIZE + 5)),
                        replace(combined16, backend="batched"), 11,
                        name="probe")


@pytest.fixture(scope="module")
def validated16(trained16, probe_bank) -> sg.SurrogateBundle:
    report = sg.validate(probe_bank, LOOSE_TOL, bundle=trained16, seed=5)
    return trained16.with_validation(report)


# ----------------------------------------------------------------------
# Validation gate
# ----------------------------------------------------------------------
class TestValidationGate:
    def test_loose_tolerance_passes(self, trained16, probe_bank):
        report = sg.validate(probe_bank, LOOSE_TOL, bundle=trained16, seed=5)
        assert report.passed
        assert report.quantiles["p95"] <= LOOSE_TOL
        assert set(report.quantiles) == {"p50", "p90", "p95", "p99", "max"}
        assert report.per_stage  # one row per VMM stage
        for row in report.per_stage.values():
            assert set(row) == set(report.quantiles)

    def test_tight_tolerance_refuses(self, trained16, probe_bank):
        report = sg.validate(probe_bank, TIGHT_TOL, bundle=trained16, seed=5)
        assert not report.passed
        with pytest.raises(sg.SurrogateValidationError) as err:
            trained16.with_validation(report)
        assert err.value.report is report

    def test_with_validation_stamps_metadata(self, trained16, validated16):
        assert not trained16.validated
        assert validated16.validated
        assert validated16.meta.tolerance == LOOSE_TOL
        assert validated16.meta.quantiles["p95"] <= LOOSE_TOL
        # The source bundle is untouched (frozen meta, copied weights).
        assert trained16.meta.quantiles == {}

    def test_deployed_model_per_stage_rows(self, validated16, tiny_model,
                                           combined16):
        sg.register_bundle(validated16)
        deployed = deploy(tiny_model, get_bundle("combined"),
                          crossbar_size=SIZE, seed=0, backend="batched")
        try:
            report = sg.validate(deployed, LOOSE_TOL, samples=8, seed=2)
        finally:
            deployed.release()
        # One error row per deployed bank stage (conv/lstm/linear...).
        assert len(report.per_stage) >= 2
        assert report.passed

    def test_validate_rejects_unknown_target(self, trained16):
        with pytest.raises(TypeError):
            sg.validate(object(), LOOSE_TOL, bundle=trained16)


# ----------------------------------------------------------------------
# Bundle identity + persistence
# ----------------------------------------------------------------------
class TestBundleIdentity:
    def test_roundtrip_preserves_key(self, validated16, tmp_path):
        path = validated16.save(tmp_path / "b.npz")
        loaded = sg.SurrogateBundle.load(path)
        assert loaded.cache_key() == validated16.cache_key()
        assert loaded.meta == validated16.meta
        for name in validated16.weights:
            np.testing.assert_array_equal(loaded.weights[name],
                                          validated16.weights[name])

    def test_cache_key_covers_weights(self, trained16):
        tweaked_weights = {k: v.copy() for k, v in trained16.weights.items()}
        tweaked_weights["w2"][0, 0] += 1e-9
        tweaked = sg.SurrogateBundle(tweaked_weights, trained16.meta)
        assert tweaked.cache_key() != trained16.cache_key()

    @pytest.mark.parametrize("change", [
        {"tolerance": 0.123},
        {"train_seed": 99},
        {"reference_version": "0.0.0-other"},
        {"validated": True},
    ])
    def test_cache_key_covers_nonweight_metadata(self, trained16, change):
        tweaked = sg.SurrogateBundle(trained16.weights,
                                     replace(trained16.meta, **change))
        assert tweaked.cache_key() != trained16.cache_key()

    def test_missing_file_is_structured(self, tmp_path):
        with pytest.raises(sg.SurrogateUnavailableError):
            sg.SurrogateBundle.load(tmp_path / "missing.npz")

    def test_resolution_order(self, validated16, combined16, tmp_path,
                              monkeypatch):
        key = combined16.cache_key()
        with pytest.raises(sg.SurrogateUnavailableError):
            sg.resolve_bundle(combined16)
        # Directory resolution, then the in-process registry wins.
        validated16.save(sg.SurrogateBundle.path_for(tmp_path, key))
        monkeypatch.setenv(sg.ENV_SURROGATE_DIR, str(tmp_path))
        assert sg.resolve_bundle(combined16).cache_key() == \
            validated16.cache_key()


# ----------------------------------------------------------------------
# Selection surfaces
# ----------------------------------------------------------------------
class TestSelectionSurfaces:
    def test_registry_and_salts(self):
        assert "surrogate" in BACKENDS
        assert "surrogate" in available_backends()
        assert resolve_backend("surrogate") == "surrogate"
        assert set(BACKEND_CACHE_SALTS) == set(BACKENDS)
        assert BACKEND_CACHE_SALTS["loop"] == EXACT_CACHE_SALT
        assert BACKEND_CACHE_SALTS["batched"] == EXACT_CACHE_SALT
        assert BACKEND_CACHE_SALTS["surrogate"] != EXACT_CACHE_SALT

    def test_crossbar_config_surface(self, combined16, validated16):
        config = replace(combined16, backend="surrogate")
        sg.register_bundle(validated16)
        rng = np.random.default_rng(4)
        bank = CrossbarBank(rng.standard_normal((SIZE, SIZE)), config, 4,
                            name="b")
        out = bank.vmm(rng.standard_normal((3, SIZE)))
        assert out.shape == (3, SIZE)
        assert np.isfinite(out).all()

    def test_env_surface(self, combined16, validated16, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "surrogate")
        sg.register_bundle(validated16)
        rng = np.random.default_rng(4)
        bank = CrossbarBank(rng.standard_normal((SIZE, SIZE)), combined16, 4,
                            name="b")
        assert bank.backend == "surrogate"
        assert np.isfinite(bank.vmm(rng.standard_normal((2, SIZE)))).all()

    def test_deploy_surface(self, tiny_model, validated16):
        deployed = deploy(tiny_model, get_bundle("combined"),
                          crossbar_size=SIZE, seed=0, backend="surrogate")
        try:
            deployed.attach_surrogate(validated16)
            for engines in deployed.engines.values():
                for engine in engines:
                    assert engine.backend == "surrogate"
            signal = np.random.default_rng(0).standard_normal((1, 128))
            from repro.nn import no_grad
            with no_grad():
                out = tiny_model.forward(signal)
            assert np.isfinite(out.data).all()
        finally:
            deployed.release()

    def test_swordfish_config_surface(self):
        config = SwordfishConfig(vmm_backend="surrogate")
        assert config.vmm_backend == "surrogate"
        # The literal backend never splits the design-point cache key.
        assert config.cache_key() == \
            SwordfishConfig(vmm_backend="batched").cache_key()

    def test_attach_beats_registry(self, combined16, trained16, validated16):
        config = replace(combined16, backend="surrogate")
        sg.register_bundle(trained16)
        rng = np.random.default_rng(4)
        bank = CrossbarBank(rng.standard_normal((SIZE, SIZE)), config, 4,
                            name="b")
        bank.engine.attach_surrogate(validated16)
        assert bank.engine.surrogate_runtime().bundle is validated16

    def test_design_point_mismatch_refused(self, validated16):
        other = get_bundle("combined").crossbar_config(2 * SIZE,
                                                       WRITE_VARIATION)
        rng = np.random.default_rng(4)
        bank = CrossbarBank(rng.standard_normal((2 * SIZE, SIZE)),
                            replace(other, backend="surrogate"), 4, name="b")
        bank.engine.attach_surrogate(validated16)
        with pytest.raises(sg.SurrogateError, match="design point"):
            bank.vmm(rng.standard_normal((2, 2 * SIZE)))


# ----------------------------------------------------------------------
# Structured backend resolution
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_explicit_garbage(self):
        with pytest.raises(BackendResolutionError) as err:
            resolve_backend("vectorized")
        assert err.value.requested == "vectorized"
        assert err.value.source == "explicit configuration"
        assert err.value.available == available_backends()

    def test_env_garbage_fails_fast(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "gpu")
        with pytest.raises(BackendResolutionError) as err:
            resolve_backend()
        assert ENV_BACKEND in err.value.source
        # Still a ValueError for pre-existing call sites.
        assert isinstance(err.value, ValueError)

    def test_config_surfaces_raise_structured(self):
        with pytest.raises(BackendResolutionError):
            CrossbarConfig(backend="nope")
        with pytest.raises(BackendResolutionError):
            SwordfishConfig(vmm_backend="nope")


# ----------------------------------------------------------------------
# Backend-salted cache keys
# ----------------------------------------------------------------------
class TestCacheSalting:
    def _key(self, monkeypatch, env=None, **kwargs):
        if env is None:
            monkeypatch.delenv(ENV_BACKEND, raising=False)
        else:
            monkeypatch.setenv(ENV_BACKEND, env)
        return job_key(Job(fn="tests.test_surrogate:_echo", kwargs=kwargs),
                       salt="t")

    def test_exact_backends_share_one_key(self, monkeypatch):
        default = self._key(monkeypatch, x=1)
        assert self._key(monkeypatch, x=1, vmm_backend="loop") == default
        assert self._key(monkeypatch, x=1, vmm_backend="batched") == default
        assert self._key(monkeypatch, env="loop", x=1) == default

    def test_surrogate_never_shares_exact_keys(self, monkeypatch):
        exact = self._key(monkeypatch, x=1)
        approx = self._key(monkeypatch, x=1, vmm_backend="surrogate")
        assert approx != exact
        assert self._key(monkeypatch, env="surrogate", x=1) == approx

    def test_nested_config_backend_is_normalized(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        base = SwordfishConfig()
        keys = {job_key(Job(fn="f", kwargs={"config": cfg}), salt="t")
                for cfg in (base, replace(base, vmm_backend="loop"),
                            replace(base, vmm_backend="batched"))}
        assert len(keys) == 1
        surrogate_key = job_key(
            Job(fn="f",
                kwargs={"config": replace(base, vmm_backend="surrogate")}),
            salt="t")
        assert surrogate_key not in keys

    def test_env_garbage_fails_at_key_time(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "garbage")
        with pytest.raises(BackendResolutionError):
            job_key(Job(fn="f", kwargs={"x": 1}), salt="t")

    def test_sweep_across_backends_gets_zero_hits(self, tmp_path,
                                                  monkeypatch):
        """The cache-poisoning regression: surrogate results must never
        be replayed as exact ones (and vice versa), while the two exact
        backends keep sharing entries."""
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        cache = ResultCache(tmp_path / "cache")

        def run(backend):
            plan = SweepPlan(f"sweep_{backend}", [
                Job(fn="tests.test_surrogate:_echo",
                    kwargs={"x": i, "vmm_backend": backend})
                for i in range(4)
            ])
            return SweepRunner(workers=1, cache=cache, salt="t").run(plan)

        first = run("surrogate")
        assert first.summary["cache_hits"] == 0
        exact = run("batched")
        assert exact.summary["cache_hits"] == 0  # no surrogate reuse
        again = run("loop")
        assert again.summary["cache_hits"] == 4  # exact backends share
        approx_again = run("surrogate")
        assert approx_again.summary["cache_hits"] == 4


# ----------------------------------------------------------------------
# Hypothesis: tolerance envelope across ragged shapes
# ----------------------------------------------------------------------
class TestToleranceEnvelope:
    @settings(max_examples=10, deadline=None)
    @given(rows=st.integers(2, 2 * SIZE), cols=st.integers(1, 2 * SIZE),
           seed=st.integers(0, 2 ** 16))
    def test_error_within_declared_tolerance(self, validated16, combined16,
                                             rows, cols, seed):
        rng = np.random.default_rng(seed)
        bank = CrossbarBank(rng.standard_normal((rows, cols)),
                            replace(combined16, backend="batched"),
                            seed, name="ragged")
        bank.engine.attach_surrogate(validated16)
        x = rng.standard_normal((6, rows))
        x[3:] *= 10.0
        exact = _execute_batched(bank.engine, x)
        approx = sg.execute_surrogate(bank.engine, x)
        st_ = bank.engine.stacks()
        full_scale = (rows * max(float(st_.w_max.max()), 1e-9)
                      * np.maximum(np.abs(x).max(axis=1, keepdims=True),
                                   1e-12))
        err = np.abs(approx - exact) / full_scale
        assert err.max() <= validated16.meta.tolerance


# ----------------------------------------------------------------------
# Per-stage observability spans
# ----------------------------------------------------------------------
class TestSurrogateSpans:
    def test_surrogate_vmm_emits_stage_spans(self, validated16, combined16,
                                             monkeypatch, tmp_path):
        from repro.observability import ENV_TRACE, get_tracer, \
            load_span_events
        trace = tmp_path / "trace.jsonl"
        monkeypatch.setenv(ENV_TRACE, str(trace))
        tracer = get_tracer()
        tracer.close()
        tracer.drain()
        try:
            rng = np.random.default_rng(0)
            bank = CrossbarBank(rng.standard_normal((SIZE, SIZE)),
                                replace(combined16, backend="surrogate"),
                                0, name="traced")
            bank.engine.attach_surrogate(validated16)
            bank.engine.execute(rng.standard_normal((2, SIZE)))
        finally:
            tracer.close()
            tracer.drain()
            monkeypatch.delenv(ENV_TRACE, raising=False)
        names = {event["name"] for event in load_span_events(trace)}
        assert {"vmm", "vmm.surrogate.gather", "vmm.surrogate.linear",
                "vmm.surrogate.mlp", "vmm.digital"} <= names


# ----------------------------------------------------------------------
# Serve gate: approximate backends must arrive validated
# ----------------------------------------------------------------------
class TestServeGate:
    @pytest.fixture()
    def serve_config(self):
        from repro.serve import EngineConfig
        return EngineConfig(bundle="combined", crossbar_size=SIZE,
                            write_variation=WRITE_VARIATION,
                            backend="surrogate")

    @pytest.fixture()
    def demo_model(self):
        from repro.basecaller import BonitoModel
        from repro.serve.cli import DEMO_CONFIG
        model = BonitoModel(DEMO_CONFIG)
        model.eval()
        return model

    def test_missing_bundle_refused(self, serve_config, demo_model):
        from repro.serve import BasecallEngine, ProtocolError
        with pytest.raises(ProtocolError) as err:
            BasecallEngine(demo_model, serve_config)
        assert err.value.code == "backend_unvalidated"

    def test_unvalidated_bundle_refused(self, serve_config, demo_model,
                                        trained16):
        from repro.serve import BasecallEngine, ProtocolError
        sg.register_bundle(trained16)
        with pytest.raises(ProtocolError) as err:
            BasecallEngine(demo_model, serve_config)
        assert err.value.code == "backend_unvalidated"

    def test_validated_bundle_serves_with_salted_keys(self, serve_config,
                                                      demo_model,
                                                      validated16):
        from dataclasses import replace as dc_replace

        from repro.serve import BasecallEngine
        sg.register_bundle(validated16)
        engine = BasecallEngine(demo_model, serve_config)
        exact = BasecallEngine(demo_model,
                               dc_replace(serve_config, backend="batched"))
        assert ":vmm=surrogate:" in engine._key_prefix
        assert validated16.cache_key() in engine._key_prefix
        assert engine._key_prefix != exact._key_prefix
        signal = np.random.default_rng(7).normal(size=96)
        result = engine.basecall(signal)
        assert result.frames > 0
