"""Tests for the Accuracy Enhancer (VAT, KD, R-V-W, RSA+KD)."""

import numpy as np
import pytest

from repro import nn
from repro.basecaller import BonitoModel
from repro.core import (
    EnhanceConfig,
    TECHNIQUES,
    build_design,
    characterize_weight_noise,
    deploy,
    get_bundle,
    rsa_online_retrain,
)
from tests.conftest import TINY_CONFIG

FAST = EnhanceConfig(retrain_epochs=1, online_epochs=1, num_chunks=32,
                     sram_fraction=0.10)


def clone(model):
    out = BonitoModel(TINY_CONFIG)
    out.load_state_dict(model.state_dict())
    out.eval()
    return out


class TestCharacterization:
    def test_noise_map_covers_vmm_params(self, tiny_model):
        noise = characterize_weight_noise(tiny_model,
                                          get_bundle("write_only"),
                                          64, 0.2)
        vmm_params = []
        for _, layer in tiny_model.vmm_layers():
            if hasattr(layer, "weight_hh"):
                vmm_params += [layer.weight_ih, layer.weight_hh]
            else:
                vmm_params.append(layer.weight)
        assert set(noise) == {id(p) for p in vmm_params}
        for param in vmm_params:
            assert noise[id(param)].shape == param.data.shape
            assert np.all(noise[id(param)] > 0)

    def test_more_variation_more_noise(self, tiny_model):
        low = characterize_weight_noise(tiny_model, get_bundle("write_only"),
                                        64, 0.05)
        high = characterize_weight_noise(tiny_model, get_bundle("write_only"),
                                         64, 0.40)
        lows = np.mean([v.mean() for v in low.values()])
        highs = np.mean([v.mean() for v in high.values()])
        assert highs > lows


class TestBuildDesign:
    def test_unknown_technique_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            build_design(tiny_model, "magic", "write_only", config=FAST)

    def test_none_technique_no_retrain(self, tiny_model, tiny_chunks):
        before = {n: p.data.copy() for n, p in tiny_model.named_parameters()}
        design = build_design(tiny_model, "none", "write_only",
                              config=FAST, chunks=tiny_chunks,
                              use_cache=False)
        for n, p in tiny_model.named_parameters():
            assert np.allclose(p.data, before[n])
        assert design.sram_fraction == 0.0
        assert not design.uses_wrv
        design.release()

    def test_vat_changes_weights(self, tiny_model, tiny_chunks):
        before = {n: p.data.copy() for n, p in tiny_model.named_parameters()}
        design = build_design(tiny_model, "vat", "write_only",
                              config=FAST, chunks=tiny_chunks,
                              use_cache=False)
        changed = any(not np.allclose(p.data, before[n])
                      for n, p in tiny_model.named_parameters())
        assert changed
        design.release()

    def test_rvw_uses_wrv_programming(self, tiny_model, tiny_chunks):
        design = build_design(tiny_model, "rvw", "write_only",
                              config=FAST, chunks=tiny_chunks,
                              use_cache=False)
        assert design.uses_wrv
        from repro.crossbar import WriteReadVerify
        assert isinstance(design.deployed.programming, WriteReadVerify)
        design.release()

    def test_rsa_kd_assigns_sram(self, tiny_model, tiny_chunks):
        design = build_design(tiny_model, "rsa_kd", "write_only",
                              config=FAST, chunks=tiny_chunks,
                              use_cache=False)
        assert design.sram_fraction == FAST.sram_fraction
        any_sram = any(
            tile.sram_mask.any()
            for banks in design.deployed.banks.values()
            for bank in banks for row in bank.tiles for tile in row
        )
        assert any_sram
        design.release()

    def test_retrain_cache_roundtrip(self, tiny_model, tiny_chunks,
                                     tmp_path, monkeypatch):
        monkeypatch.setenv("SWORDFISH_CACHE", str(tmp_path))
        design = build_design(clone(tiny_model), "vat", "write_only",
                              config=FAST, chunks=tiny_chunks)
        retrained = {n: p.data.copy()
                     for n, p in design.deployed.model.named_parameters()}
        design.release()
        cached = list((tmp_path / "retrained").glob("*.npz"))
        assert len(cached) == 1
        # Second build must hit the cache and reproduce the weights.
        design2 = build_design(clone(tiny_model), "vat", "write_only",
                               config=FAST, chunks=tiny_chunks)
        for n, p in design2.deployed.model.named_parameters():
            assert np.allclose(p.data, retrained[n])
        design2.release()

    def test_technique_list_is_paper_order(self):
        assert TECHNIQUES == ("none", "vat", "kd", "rvw", "rsa_kd", "all")


class TestRSAOnline:
    def test_only_sram_weights_change(self, tiny_model, tiny_chunks):
        deployed = deploy(tiny_model, get_bundle("write_only"),
                          write_variation=0.3, seed=5)
        before = {n: p.data.copy() for n, p in tiny_model.named_parameters()}
        rsa_online_retrain(deployed, tiny_chunks[:16], FAST)
        # The network's own (clean) weights are restored afterwards...
        for n, p in tiny_model.named_parameters():
            assert np.allclose(p.data, before[n]), n
        # ...but the banks' SRAM cells were updated away from the clean
        # values for at least one tile.
        moved = updated = 0
        for name, layer in tiny_model.vmm_layers():
            from repro.core import DeployedModel
            weights = DeployedModel._layer_weights(layer)
            for bank, w in zip(deployed.banks[name], weights):
                size = bank.config.size
                for i, tile_row in enumerate(bank.tiles):
                    for j, tile in enumerate(tile_row):
                        mask = tile.sram_mask
                        moved += mask.sum()
                        block = w[i * size:i * size + tile.rows,
                                  j * size:j * size + tile.cols]
                        updated += (~np.isclose(
                            tile.ideal_weights[mask], block[mask])).sum()
        deployed.release()
        assert moved > 0
        assert updated > 0

    def test_zero_fraction_noop(self, tiny_model, tiny_chunks):
        deployed = deploy(tiny_model, get_bundle("write_only"),
                          write_variation=0.3, seed=5)
        result = rsa_online_retrain(deployed, tiny_chunks[:8], FAST,
                                    sram_fraction=0.0)
        assert result is deployed
        deployed.release()
