"""Tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import _unbroadcast


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        x[i] += eps
        up = f()
        x[i] -= 2 * eps
        down = f()
        x[i] += eps
        grad[i] = (up - down) / (2 * eps)
    return grad


def check_grad(build, param, tol=1e-6):
    """Compare autograd against numerical differentiation."""
    param.grad = None
    out = build()
    out.backward()
    analytic = param.grad.copy()
    numeric = numerical_gradient(lambda: float(build().data), param.data)
    assert np.abs(analytic - numeric).max() < tol


class TestBasicOps:
    def test_add_broadcast(self, rng):
        a = nn.Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = nn.Tensor(rng.standard_normal(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 3.0)

    def test_mul_grad(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_grad(lambda: (a * a * 2.0).sum(), a)

    def test_div_grad(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 3)) + 3.0, requires_grad=True)
        check_grad(lambda: (1.0 / a).sum(), a)

    def test_sub_and_neg(self, rng):
        a = nn.Tensor(rng.standard_normal(5), requires_grad=True)
        ((-a) - a).sum().backward()
        assert np.allclose(a.grad, -2.0)

    def test_pow_grad(self, rng):
        a = nn.Tensor(np.abs(rng.standard_normal(4)) + 0.5,
                      requires_grad=True)
        check_grad(lambda: (a ** 3).sum(), a)

    def test_pow_rejects_tensor_exponent(self):
        a = nn.Tensor([1.0], requires_grad=True)
        with pytest.raises(TypeError):
            a ** nn.Tensor([2.0])

    def test_scalar_right_ops(self):
        a = nn.Tensor([2.0], requires_grad=True)
        out = 3.0 - a + 4.0 * a
        out.backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(out.data, 9.0)


class TestMatmul:
    def test_2d(self, rng):
        a = nn.Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = nn.Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_grad(lambda: (a @ b).sum(), a)
        check_grad(lambda: (a @ b).sum(), b)

    def test_batched(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = nn.Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_grad(lambda: ((a @ b) ** 2).sum(), b)

    def test_vector_cases(self, rng):
        v = nn.Tensor(rng.standard_normal(4), requires_grad=True)
        m = nn.Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        check_grad(lambda: (v @ m).sum(), v)
        w = nn.Tensor(rng.standard_normal(3), requires_grad=True)
        check_grad(lambda: ((m @ w) ** 2).sum(), w)

    def test_dot(self, rng):
        a = nn.Tensor(rng.standard_normal(4), requires_grad=True)
        b = nn.Tensor(rng.standard_normal(4), requires_grad=True)
        check_grad(lambda: a @ b, a)


class TestActivations:
    @pytest.mark.parametrize("name", ["tanh", "sigmoid", "relu", "swish",
                                      "exp", "abs"])
    def test_grad(self, rng, name):
        a = nn.Tensor(rng.standard_normal((3, 3)) + 0.1, requires_grad=True)
        check_grad(lambda: (getattr(a, name)() ** 2).sum(), a, tol=1e-5)

    def test_log_grad(self, rng):
        a = nn.Tensor(np.abs(rng.standard_normal(5)) + 1.0,
                      requires_grad=True)
        check_grad(lambda: a.log().sum(), a)

    def test_clip_grad_zero_outside(self):
        a = nn.Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self, rng):
        a = nn.Tensor(rng.standard_normal((4, 6)))
        s = a.softmax(axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_log_softmax_grad(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        check_grad(lambda: (a.log_softmax(axis=-1) ** 2).sum(), a, tol=1e-5)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = nn.Tensor(rng.standard_normal((3, 4, 5)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1, 5)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_mean_var(self, rng):
        a = nn.Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        check_grad(lambda: a.var(axis=0).sum(), a, tol=1e-5)

    def test_max_grad_flows_to_argmax(self):
        a = nn.Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])


class TestShapeOps:
    def test_reshape_transpose(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        check_grad(lambda: (a.reshape(3, 4).transpose(1, 0) ** 2).sum(), a)

    def test_getitem(self, rng):
        a = nn.Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        a[1:3, ::2].sum().backward()
        expected = np.zeros((4, 4))
        expected[1:3, ::2] = 1.0
        assert np.allclose(a.grad, expected)

    def test_pad(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        out = a.pad(((1, 1), (0, 2)))
        assert out.shape == (4, 5)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_concat_stack(self, rng):
        a = nn.Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = nn.Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        nn.Tensor.concat([a, b], axis=1).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)
        a.zero_grad()
        nn.Tensor.stack([a, a], axis=0).sum().backward()
        assert np.allclose(a.grad, 2.0)


class TestTapeSemantics:
    def test_no_grad_blocks_taping(self):
        a = nn.Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = a * 2
        assert not out.requires_grad
        assert nn.is_grad_enabled()

    def test_detach(self):
        a = nn.Tensor([1.0], requires_grad=True)
        assert not a.detach().requires_grad

    def test_grad_accumulates_on_reuse(self):
        a = nn.Tensor([2.0], requires_grad=True)
        (a * a + a).backward()   # d/da (a^2 + a) = 2a + 1 = 5
        assert np.allclose(a.grad, 5.0)

    def test_diamond_graph(self, rng):
        a = nn.Tensor(rng.standard_normal(3), requires_grad=True)
        b = a * 2
        check_grad(lambda: ((a * 2) * (a * 2) + (a * 2)).sum(), a)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            nn.Tensor([1.0]).backward()

    def test_unbroadcast_shapes(self):
        grad = np.ones((2, 3, 4))
        assert _unbroadcast(grad, (3, 4)).shape == (3, 4)
        assert _unbroadcast(grad, (1, 4)).shape == (1, 4)
        assert np.allclose(_unbroadcast(grad, (1, 4)), 6.0)
