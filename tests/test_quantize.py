"""Tests for fixed-point quantization (Table 3 machinery)."""

import numpy as np
import pytest

from repro import nn
from repro.basecaller import BonitoConfig, BonitoModel


class TestQuantizeSymmetric:
    def test_identity_when_bits_none(self, rng):
        x = rng.standard_normal(10)
        assert np.allclose(nn.quantize_symmetric(x, None), x)

    def test_max_value_preserved(self, rng):
        x = rng.standard_normal(100)
        q = nn.quantize_symmetric(x, 8)
        assert np.isclose(np.abs(q).max(), np.abs(x).max(), rtol=1e-9)

    def test_error_bounded_by_half_step(self, rng):
        x = rng.standard_normal(1000)
        step = nn.quantization_step(x, 8)
        q = nn.quantize_symmetric(x, 8)
        assert np.abs(q - x).max() <= step / 2 + 1e-12

    def test_fewer_bits_more_error(self, rng):
        x = rng.standard_normal(1000)
        errors = [np.abs(nn.quantize_symmetric(x, b) - x).mean()
                  for b in (16, 8, 4, 2)]
        assert errors == sorted(errors)

    def test_grid_size(self):
        x = np.linspace(-1, 1, 1000)
        q = nn.quantize_symmetric(x, 3)
        assert len(np.unique(q)) <= 7  # 2^(3-1)-1 levels each side + zero

    def test_zeros_input(self):
        assert np.allclose(nn.quantize_symmetric(np.zeros(5), 8), 0.0)

    def test_zero_step_emits_no_warning(self):
        # Regression: a constant-zero tensor (or an explicit zero step)
        # used to divide by zero and raise a RuntimeWarning.
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            q = nn.quantize_symmetric(np.zeros(7), 8)
            assert np.array_equal(q, np.zeros(7))
            q = nn.quantize_symmetric(np.ones(3), 8, step=0.0)
            assert np.array_equal(q, np.zeros(3))

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            nn.quantize_symmetric(np.ones(3), 1)


class TestQuantConfigs:
    def test_paper_presets_present(self):
        names = [c.name for c in nn.PAPER_QUANT_CONFIGS]
        assert names == ["DFP 32-32", "FPP 16-16", "FPP 8-8", "FPP 8-4",
                         "FPP 4-8", "FPP 4-4", "FPP 4-2"]

    def test_lookup(self):
        config = nn.get_quant_config("FPP 8-4")
        assert config.weight_bits == 8 and config.activation_bits == 4
        with pytest.raises(KeyError):
            nn.get_quant_config("FPP 1-1")

    def test_float_flag(self):
        assert nn.get_quant_config("DFP 32-32").is_float
        assert not nn.get_quant_config("FPP 16-16").is_float


class TestFakeQuant:
    def test_straight_through_gradient(self, rng):
        quant = nn.FakeQuant(8)
        x = nn.Tensor(rng.standard_normal(8), requires_grad=True)
        quant(x).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_low_bit_clips_outlier_gradient(self):
        quant = nn.FakeQuant(4, percentile=90.0)
        values = np.concatenate([np.linspace(-1, 1, 99), [100.0]])
        x = nn.Tensor(values, requires_grad=True)
        out = quant(x)
        out.sum().backward()
        assert x.grad[-1] == 0.0          # outlier clipped
        assert np.allclose(x.grad[25:75], 1.0)  # bulk passes through
        assert out.data[-1] < 100.0       # outlier saturated

    def test_none_bits_passthrough(self, rng):
        quant = nn.FakeQuant(None)
        x = nn.Tensor(rng.standard_normal(4))
        assert quant(x) is x or np.allclose(quant(x).data, x.data)


class TestQuantizedModel:
    def test_weights_snap_to_grid(self, tiny_model):
        original = {n: p.data.copy()
                    for n, p in tiny_model.named_parameters()}
        wrapped = nn.QuantizedModel(tiny_model, nn.get_quant_config("FPP 4-4"))
        changed = any(
            not np.allclose(p.data, original[n])
            for n, p in tiny_model.named_parameters()
        )
        assert changed
        wrapped.restore_weights()
        for n, p in tiny_model.named_parameters():
            assert np.allclose(p.data, original[n])

    def test_16bit_nearly_lossless_output(self, tiny_model, rng):
        signal = rng.standard_normal(256)
        with nn.no_grad():
            before = tiny_model(nn.Tensor(signal[None, :])).data
        nn.QuantizedModel(tiny_model, nn.get_quant_config("FPP 16-16"))
        with nn.no_grad():
            after = tiny_model(nn.Tensor(signal[None, :])).data
        tiny_model.set_activation_quant(None)
        assert np.abs(before - after).max() < 0.05

    def test_activation_quant_installed(self, tiny_model):
        nn.QuantizedModel(tiny_model, nn.get_quant_config("FPP 8-4"))
        assert isinstance(tiny_model._activation_quant, nn.FakeQuant)
        assert tiny_model._activation_quant.bits == 4
        tiny_model.set_activation_quant(None)
