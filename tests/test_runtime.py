"""Tests for ``repro.runtime`` — jobs, cache, executor, telemetry, CLI.

Job targets used by the worker-pool tests live at module level so a
worker process can resolve them by dotted name
(``"tests.test_runtime:..."``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import EnhanceConfig, SwordfishConfig
from repro.runtime import (
    CircuitOpenError,
    Job,
    JsonlSink,
    ResultCache,
    SweepError,
    SweepPlan,
    SweepRunner,
    Telemetry,
    canonical_json,
    job_key,
    resolve_target,
)
from tests.conftest import TINY_CONFIG

FAST_ENHANCE = EnhanceConfig(retrain_epochs=1, online_epochs=1,
                             num_chunks=24)


# ----------------------------------------------------------------------
# Worker-resolvable job targets
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _simulate(seed: int) -> dict:
    """Deterministic seeded computation (stand-in for a design point)."""
    import numpy as np
    rng = np.random.default_rng(seed)
    values = rng.normal(size=256)
    return {"seed": seed, "mean": float(values.mean()),
            "norm": float(np.linalg.norm(values))}


def _sleepy(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _flaky(marker: str):
    """Fails on the first attempt, succeeds once the marker exists."""
    path = Path(marker)
    if path.exists():
        return "recovered"
    path.touch()
    raise RuntimeError("transient failure (first attempt)")


def _suicide() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


def _unpicklable():
    return lambda x: x


def _always_fails(x: int) -> None:
    raise RuntimeError(f"doomed design point {x}")


# ----------------------------------------------------------------------
# Job / plan / target resolution
# ----------------------------------------------------------------------
class TestJob:
    def test_resolve_and_execute(self):
        job = Job(fn="tests.test_runtime:_square", kwargs={"x": 7})
        assert job.resolve() is _square
        assert job.execute() == 49
        assert job.tag == "_square"

    def test_bad_target_specs(self):
        with pytest.raises(ValueError):
            resolve_target("no_colon_here")
        with pytest.raises(AttributeError):
            resolve_target("tests.test_runtime:_missing")
        with pytest.raises(TypeError):
            resolve_target("tests.test_runtime:FAST_ENHANCE")

    def test_plan_from_configs(self):
        configs = [SwordfishConfig(seed=s, model=TINY_CONFIG,
                                   enhance=FAST_ENHANCE) for s in (0, 1)]
        plan = SweepPlan.from_configs("demo", configs, metric="accuracy")
        assert len(plan) == 2
        assert plan.jobs[0].fn == "repro.runtime.job:run_swordfish_config"
        assert plan.jobs[0].kwargs["metric"] == "accuracy"
        # Tags come from the config content hash, so they differ by seed.
        assert plan.jobs[0].tag != plan.jobs[1].tag
        rebuilt = SwordfishConfig.from_dict(plan.jobs[0].kwargs["config"])
        assert rebuilt == configs[0]


class TestConfigSerialization:
    def test_round_trip(self):
        config = SwordfishConfig(
            quantization="FPP 8-8", crossbar_size=256,
            write_variation=0.2, bundle="combined", technique="rsa_kd",
            datasets=("D2", "D3"), reads_per_dataset=4, seed=11,
            model=TINY_CONFIG, enhance=FAST_ENHANCE,
        )
        data = config.to_dict()
        # The payload must survive JSON (the runtime ships it to
        # workers and hashes it for cache keys).
        data = json.loads(json.dumps(data))
        assert SwordfishConfig.from_dict(data) == config

    def test_cache_key_stable_and_sensitive(self):
        a = SwordfishConfig(model=TINY_CONFIG, enhance=FAST_ENHANCE)
        b = SwordfishConfig(model=TINY_CONFIG, enhance=FAST_ENHANCE)
        assert a.cache_key() == b.cache_key()
        c = SwordfishConfig(model=TINY_CONFIG, enhance=FAST_ENHANCE,
                            seed=99)
        assert c.cache_key() != a.cache_key()
        assert a.cache_key().startswith("swordfish_fpp16_16_x64_")


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_canonical_json_is_order_insensitive(self):
        assert (canonical_json({"b": 1, "a": (1, 2)})
                == canonical_json({"a": [1, 2], "b": 1}))
        assert canonical_json({"e": FAST_ENHANCE}) == canonical_json(
            {"e": dict(FAST_ENHANCE.__dict__)})

    def test_job_key_salt_and_kwargs_sensitivity(self):
        job = Job(fn="tests.test_runtime:_square", kwargs={"x": 1})
        same = Job(fn="tests.test_runtime:_square", kwargs={"x": 1})
        other = Job(fn="tests.test_runtime:_square", kwargs={"x": 2})
        assert job_key(job, "s1") == job_key(same, "s1")
        assert job_key(job, "s1") != job_key(other, "s1")
        assert job_key(job, "s1") != job_key(job, "s2")
        pinned = Job(fn="tests.test_runtime:_square", kwargs={"x": 1},
                     key="explicit")
        assert job_key(pinned, "s1") == "explicit"

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {"value": [1.5, 2.5]})
        assert ("ab" + "0" * 62) in cache
        assert cache.get("ab" + "0" * 62) == {"value": [1.5, 2.5]}
        assert len(cache) == 1
        assert cache.clear() == 1
        with pytest.raises(KeyError):
            cache.get("ab" + "0" * 62)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, 42)
        cache.path_for(key).write_bytes(b"not a pickle")
        hit, value = cache.lookup(key)
        assert not hit and value is None

    def test_concurrent_same_key_writes_from_two_processes(self, tmp_path):
        """Two processes hammering put()+lookup() on the same key (the
        shared-cache-dir distributed-worker scenario) must never
        produce a miss, a wrong value, or a quarantined entry."""
        key = "ee" + "3" * 62
        script = (
            "import sys\n"
            "from repro.runtime import ResultCache\n"
            "cache = ResultCache(sys.argv[1])\n"
            "value = {'rows': [1.5, 2.5], 'label': 'shared'}\n"
            "for _ in range(60):\n"
            "    cache.put(%r, value)\n"
            "    hit, got = cache.lookup(%r)\n"
            "    assert hit, 'concurrent lookup missed'\n"
            "    assert got == value, got\n"
            "assert cache.quarantined == 0\n" % (key, key))
        env = dict(os.environ)
        repo_root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(repo_root / "src"),
                        env.get("PYTHONPATH", "")) if p)
        procs = [subprocess.Popen([sys.executable, "-c", script,
                                   str(tmp_path)],
                                  env=env, stderr=subprocess.PIPE)
                 for _ in range(2)]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        cache = ResultCache(tmp_path)
        assert cache.get(key) == {"rows": [1.5, 2.5], "label": "shared"}
        assert cache.quarantined == 0
        assert not list(cache.quarantine_dir.glob("*.bad"))


# ----------------------------------------------------------------------
# Executor: serial, cache hits, retries, failures
# ----------------------------------------------------------------------
def _plan(n: int = 6) -> SweepPlan:
    return SweepPlan("squares", [
        Job(fn="tests.test_runtime:_square", kwargs={"x": i},
            tag=f"sq/{i}") for i in range(n)
    ])


class TestSerialExecution:
    def test_results_keep_plan_order(self):
        result = SweepRunner(workers=1).run(_plan())
        assert result.ok
        assert result.values == [0, 1, 4, 9, 16, 25]
        assert all(o.attempts == 1 and not o.cache_hit
                   for o in result.outcomes)

    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = SweepRunner(workers=1, cache=cache,
                            salt="t").run(_plan())
        assert first.summary["cache_hits"] == 0
        assert first.summary["cache_misses"] == 6

        log = tmp_path / "run2.jsonl"
        second = SweepRunner(workers=1, cache=cache, salt="t",
                             telemetry_path=log).run(_plan())
        # 100% cache hits on the second run, same values.
        assert second.summary["cache_hits"] == 6
        assert second.summary["cache_misses"] == 0
        assert second.values == first.values
        assert all(o.cache_hit for o in second.outcomes)

        # The telemetry JSONL records every job with cache and timing.
        events = [json.loads(line) for line in log.read_text().splitlines()]
        finishes = [e for e in events if e["event"] == "finish"]
        assert len(finishes) == 6
        for event in finishes:
            assert event["cache"] == "hit"
            assert event["status"] == "ok"
            assert "wall_s" in event and "job" in event and "key" in event
        assert events[-1]["event"] == "summary"
        assert events[-1]["cache_hits"] == 6

    def test_cross_figure_sharing(self, tmp_path):
        """A second plan reusing a first plan's jobs hits its cache."""
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, salt="t").run(_plan(4))
        other = SweepPlan("other-figure", [
            Job(fn="tests.test_runtime:_square", kwargs={"x": 2}),
            Job(fn="tests.test_runtime:_square", kwargs={"x": 99}),
        ])
        result = SweepRunner(cache=cache, salt="t").run(other)
        assert result.summary["cache_hits"] == 1
        assert result.summary["cache_misses"] == 1
        assert result.values == [4, 9801]

    def test_retry_then_success(self, tmp_path):
        events = []
        telemetry = Telemetry()
        telemetry.subscribe(events.append)
        job = Job(fn="tests.test_runtime:_flaky",
                  kwargs={"marker": str(tmp_path / "marker")})
        result = SweepRunner(workers=1, retries=2, backoff=0.0,
                             telemetry=telemetry).run(SweepPlan("f", [job]))
        assert result.ok
        assert result.values == ["recovered"]
        assert result.outcomes[0].attempts == 2
        assert [e["event"] for e in events].count("retry") == 1

    def test_failure_after_retries(self):
        job = Job(fn="tests.test_runtime:_missing_target",
                  kwargs={})
        result = SweepRunner(workers=1, retries=1, backoff=0.0).run(
            SweepPlan("f", [job]))
        assert not result.ok
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "AttributeError" in outcome.error
        with pytest.raises(SweepError):
            result.raise_on_failure()

    def test_strict_runner_raises(self):
        runner = SweepRunner(workers=1, retries=0, strict=True)
        with pytest.raises(SweepError):
            runner.run(SweepPlan("f", [
                Job(fn="tests.test_runtime:_missing_target")]))

    def test_failed_jobs_count_toward_neither_cache_bucket(self, tmp_path):
        """Regression: a failed job is not a cache miss (or hit).

        The aggregator used to put every failed finish in the miss
        column, so ``hits + misses`` could exceed the number of jobs
        that produced values.
        """
        plan = SweepPlan("mixed", [
            Job(fn="tests.test_runtime:_square", kwargs={"x": 3}),
            Job(fn="tests.test_runtime:_missing_target", kwargs={}),
        ])
        summary = SweepRunner(workers=1, retries=0,
                              cache=tmp_path / "cache").run(plan).summary
        assert summary["failed"] == 1
        assert summary["cache_hits"] == 0
        assert summary["cache_misses"] == 1  # only the successful job
        assert (summary["cache_hits"] + summary["cache_misses"]
                + summary["failed"]) == summary["jobs"]

    def test_broken_hook_is_dropped_not_fatal(self):
        telemetry = Telemetry()

        def bad_hook(event):
            raise RuntimeError("boom")

        telemetry.subscribe(bad_hook)
        result = SweepRunner(workers=1, telemetry=telemetry).run(_plan(2))
        assert result.ok
        assert telemetry.hook_errors


# ----------------------------------------------------------------------
# Executor: worker pool
# ----------------------------------------------------------------------
class TestParallelExecution:
    def test_parallel_matches_serial_on_grid(self):
        """A 4-worker run of an 8-job grid equals the serial path."""
        jobs = [Job(fn="tests.test_runtime:_simulate",
                    kwargs={"seed": seed}, tag=f"sim/{seed}")
                for seed in range(8)]
        serial = SweepRunner(workers=1).run(SweepPlan("serial", jobs))
        parallel = SweepRunner(workers=4, retries=1).run(
            SweepPlan("parallel", jobs))
        assert parallel.ok
        assert parallel.values == serial.values  # bitwise-equal floats

    def test_parallel_cache_hits_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [Job(fn="tests.test_runtime:_simulate",
                    kwargs={"seed": s}) for s in range(8)]
        first = SweepRunner(workers=4, cache=cache, salt="t").run(
            SweepPlan("p1", jobs))
        second = SweepRunner(workers=4, cache=cache, salt="t").run(
            SweepPlan("p2", jobs))
        assert second.summary["cache_hits"] == 8
        assert second.values == first.values

    def test_timeout_kills_worker_and_fails_job(self):
        jobs = [Job(fn="tests.test_runtime:_sleepy",
                    kwargs={"seconds": 30.0}, tag="sleeper"),
                Job(fn="tests.test_runtime:_square", kwargs={"x": 3})]
        runner = SweepRunner(workers=2, timeout=1.0, retries=1,
                             backoff=0.0)
        started = time.monotonic()
        result = runner.run(SweepPlan("t", jobs))
        elapsed = time.monotonic() - started
        assert elapsed < 20.0  # both attempts killed, not slept out
        sleeper, square = result.outcomes
        assert sleeper.status == "failed"
        assert sleeper.attempts == 2
        assert "timeout" in sleeper.error
        assert square.ok and square.value == 9
        assert result.summary["timeouts"] >= 1

    def test_worker_crash_is_retried_then_failed(self):
        job = Job(fn="tests.test_runtime:_suicide", kwargs={},
                  tag="crasher")
        result = SweepRunner(workers=2, retries=1, backoff=0.0).run(
            SweepPlan("c", [job]))
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert "worker died" in outcome.error
        assert result.summary["retries"] == 1

    def test_unpicklable_result_is_an_error_not_a_hang(self):
        job = Job(fn="tests.test_runtime:_unpicklable", kwargs={})
        result = SweepRunner(workers=2, retries=0).run(SweepPlan("u", [job]))
        assert result.outcomes[0].status == "failed"

    def test_fallback_to_serial_when_pool_unavailable(self, monkeypatch):
        import repro.runtime.executor as executor

        def broken_pool(self, plan, count):
            self.telemetry.emit("fallback", plan=plan.name,
                                reason="forced by test")
            return None

        monkeypatch.setattr(executor.SweepRunner, "_start_pool",
                            broken_pool)
        events = []
        telemetry = Telemetry()
        telemetry.subscribe(events.append)
        result = SweepRunner(workers=4, telemetry=telemetry).run(_plan(3))
        assert result.ok
        assert result.values == [0, 1, 4]
        assert any(e["event"] == "fallback" for e in events)


# ----------------------------------------------------------------------
# Determinism across process boundaries
# ----------------------------------------------------------------------
class TestProcessDeterminism:
    def test_subprocess_matches_in_process(self, tiny_trained, monkeypatch):
        """The same seeded config is bitwise-identical in a worker."""
        import repro.core.framework as fw
        from repro.basecaller import BonitoModel

        def fake_default_model(config=None):
            clone = BonitoModel(TINY_CONFIG)
            clone.load_state_dict(tiny_trained.state_dict())
            clone.eval()
            return clone

        monkeypatch.setattr(fw, "default_model", fake_default_model)

        config = SwordfishConfig(
            technique="none", bundle="write_only", datasets=("D1",),
            reads_per_dataset=2, seed=5, model=TINY_CONFIG,
            enhance=FAST_ENHANCE,
        )
        plan = SweepPlan.from_configs("determinism", [config],
                                      metric="accuracy")
        in_process = SweepRunner(workers=1).run(plan)
        subprocess = SweepRunner(workers=2, retries=0).run(plan)
        assert in_process.ok and subprocess.ok
        # Bitwise-identical accuracy metrics across the process boundary.
        assert subprocess.values[0] == in_process.values[0]


# ----------------------------------------------------------------------
# Figure integration + CLI
# ----------------------------------------------------------------------
class TestFigureIntegration:
    def test_figure_grid_through_cache(self, tmp_path):
        """fig14's grid through the runtime: second run = 100% hits."""
        from repro.experiments import fig14_throughput

        cache = ResultCache(tmp_path)
        first = fig14_throughput.run(
            datasets=("D1",),
            runner=SweepRunner(cache=cache, salt="t"))
        log = tmp_path / "events.jsonl"
        second = fig14_throughput.run(
            datasets=("D1",),
            runner=SweepRunner(cache=cache, salt="t",
                               telemetry_path=log))
        assert second.rows == first.rows
        events = [json.loads(line)
                  for line in log.read_text().splitlines()]
        finishes = [e for e in events if e["event"] == "finish"]
        assert finishes and all(e["cache"] == "hit" for e in finishes)

    def test_registry_covers_every_figure(self):
        from repro.runtime import FIGURES
        assert set(FIGURES) == {"fig01", "tab03", "fig07", "fig08",
                                "fig09", "fig10", "fig11", "fig12",
                                "fig13", "fig14", "fig15"}

    def test_cli_list_and_cache(self, tmp_path, capsys):
        from repro.runtime.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "fig14" in out

        ResultCache(tmp_path).put("ef" + "2" * 62, 1)
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "1 cached results" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", str(tmp_path),
                     "--clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out

    def test_cli_run_fig14(self, tmp_path, capsys):
        from repro.runtime.cli import main
        code = main(["run", "fig14",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--telemetry", str(tmp_path / "run.jsonl"),
                     "--save", str(tmp_path / "results")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 14" in out
        saved = tmp_path / "results" / "fig14_throughput.json"
        assert saved.exists()
        record = json.loads(saved.read_text())
        assert record["experiment_id"] == "fig14_throughput"
        assert (tmp_path / "run.jsonl").exists()


# ----------------------------------------------------------------------
# Circuit breaker: abort a doomed grid early
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _doomed_plan(self, n: int, good: int = 0) -> SweepPlan:
        jobs = [Job(fn="tests.test_runtime:_square", kwargs={"x": i},
                    tag=f"sq/{i}") for i in range(good)]
        jobs += [Job(fn="tests.test_runtime:_always_fails",
                     kwargs={"x": i}, tag=f"doom/{i}")
                 for i in range(n - good)]
        return SweepPlan("doomed", jobs)

    def test_trips_with_structured_summary(self):
        events = []
        telemetry = Telemetry()
        telemetry.subscribe(events.append)
        runner = SweepRunner(retries=0, max_failure_rate=0.5,
                             telemetry=telemetry)
        with pytest.raises(CircuitOpenError) as excinfo:
            runner.run(self._doomed_plan(10))
        summary = excinfo.value.summary
        assert summary["plan"] == "doomed"
        assert summary["executed_failed"] == 3  # tripped at the floor
        assert summary["failure_rate"] > 0.5
        assert summary["max_failure_rate"] == 0.5
        assert summary["first_errors"][0]["error_type"] == "RuntimeError"
        assert any(e["event"] == "circuit_open" for e in events)

    def test_is_a_sweep_error(self):
        runner = SweepRunner(retries=0, max_failure_rate=0.1)
        with pytest.raises(SweepError):
            runner.run(self._doomed_plan(4))

    def test_never_trips_below_minimum_failures(self):
        """A 100% failure rate on 2 jobs stays below the 3-failure
        floor — a barely-started grid is never aborted."""
        runner = SweepRunner(retries=0, max_failure_rate=0.01)
        result = runner.run(self._doomed_plan(2))
        assert all(o.status == "failed" for o in result.outcomes)

    def test_healthy_rate_never_trips(self):
        runner = SweepRunner(retries=0, max_failure_rate=0.9)
        result = runner.run(self._doomed_plan(8, good=4))
        assert sum(o.status == "failed" for o in result.outcomes) == 4

    def test_cache_hits_do_not_dilute_the_rate(self, tmp_path):
        """9 cache hits + 3 executed failures is a 100% *executed*
        failure rate — the breaker must still trip."""
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, salt="cb").run(
            SweepPlan("warm", [Job(fn="tests.test_runtime:_square",
                                   kwargs={"x": i}, tag=f"sq/{i}")
                               for i in range(9)]))
        plan = SweepPlan("mixed", [
            Job(fn="tests.test_runtime:_square", kwargs={"x": i},
                tag=f"sq/{i}") for i in range(9)
        ] + [Job(fn="tests.test_runtime:_always_fails", kwargs={"x": i},
                 tag=f"doom/{i}") for i in range(3)])
        runner = SweepRunner(cache=cache, salt="cb", retries=0,
                             max_failure_rate=0.5)
        with pytest.raises(CircuitOpenError) as excinfo:
            runner.run(plan)
        assert excinfo.value.summary["executed"] == 3
        assert excinfo.value.summary["failure_rate"] == 1.0

    def test_breaker_works_in_parallel_mode(self):
        runner = SweepRunner(workers=2, retries=0, max_failure_rate=0.5)
        with pytest.raises(CircuitOpenError):
            runner.run(self._doomed_plan(10))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="max_failure_rate"):
            SweepRunner(max_failure_rate=0.0)
        with pytest.raises(ValueError, match="max_failure_rate"):
            SweepRunner(max_failure_rate=1.5)

    def test_worker_attribution_on_outcomes(self):
        serial = SweepRunner(workers=1).run(self._doomed_plan(2, good=2))
        assert all(o.worker == "in-process" for o in serial.outcomes)
        parallel = SweepRunner(workers=2).run(self._doomed_plan(4, good=4))
        assert all(o.worker and o.worker.startswith("pid:")
                   for o in parallel.outcomes)
